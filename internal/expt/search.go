package expt

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "search",
		Title: "adversarial search for worst-case LSRC ratios",
		Paper: "extension — empirical probe of the gap between B1/B2 and the 2/α upper bound (Figure 4 discussion)",
		Run:   runSearch,
	})
}

// searchState is one α-restricted instance with its measured LSRC ratio.
type searchState struct {
	inst  *core.Instance
	ratio float64
}

// evalRatio returns the worst LSRC ratio over a handful of list orders,
// against the exact optimum. ok=false if the instance is degenerate or the
// solver gives up.
func evalRatio(inst *core.Instance, budget int64) (float64, bool) {
	if err := inst.Validate(); err != nil {
		return 0, false
	}
	res, err := (&exact.Solver{MaxNodes: budget}).Solve(inst)
	if err != nil || !res.Optimal || res.Cmax == 0 {
		return 0, false
	}
	worst := 0.0
	for _, o := range []sched.Order{sched.FIFO, sched.LPT, sched.NarrowestFirst} {
		s, err := sched.NewLSRC(o).Schedule(inst)
		if err != nil {
			return 0, false
		}
		if r := float64(s.Makespan()) / float64(res.Cmax); r > worst {
			worst = r
		}
	}
	return worst, true
}

// mutate perturbs the instance in place-safe copy: job widths/lengths and
// the reservation window jiggle while preserving the α restriction.
func mutate(r *rng.PCG, st searchState, maxQ, maxU int) *core.Instance {
	inst := st.inst.Clone()
	switch r.Intn(4) {
	case 0: // perturb a job length
		if len(inst.Jobs) > 0 {
			j := r.Intn(len(inst.Jobs))
			l := inst.Jobs[j].Len + core.Time(r.IntRange(-2, 2))
			if l >= 1 {
				inst.Jobs[j].Len = l
			}
		}
	case 1: // perturb a job width
		if len(inst.Jobs) > 0 {
			j := r.Intn(len(inst.Jobs))
			q := inst.Jobs[j].Procs + r.IntRange(-1, 1)
			if q >= 1 && q <= maxQ {
				inst.Jobs[j].Procs = q
			}
		}
	case 2: // perturb the reservation window
		if len(inst.Res) > 0 {
			k := r.Intn(len(inst.Res))
			s := inst.Res[k].Start + core.Time(r.IntRange(-2, 2))
			l := inst.Res[k].Len + core.Time(r.IntRange(-2, 2))
			if s >= 0 && l >= 1 {
				inst.Res[k].Start, inst.Res[k].Len = s, l
			}
		}
	default: // perturb reservation width
		if len(inst.Res) > 0 {
			k := r.Intn(len(inst.Res))
			q := inst.Res[k].Procs + r.IntRange(-1, 1)
			if q >= 1 && q <= maxU {
				inst.Res[k].Procs = q
			}
		}
	}
	return inst
}

// seedInstance builds the hill-climbing start point for a given α: a small
// Prop-2-flavoured instance (wide jobs plus a blocking reservation).
func seedInstance(r *rng.PCG, m int, alpha float64) *core.Instance {
	maxQ := int(alpha * float64(m))
	if maxQ < 1 {
		maxQ = 1
	}
	maxU := m - maxQ
	inst := &core.Instance{Name: "search-seed", M: m}
	n := r.IntRange(3, 6)
	for i := 0; i < n; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, maxQ), Len: core.Time(r.IntRange(1, 6)),
		})
	}
	if maxU > 0 {
		inst.Res = append(inst.Res, core.Reservation{
			ID: 0, Procs: r.IntRange(1, maxU), Start: core.Time(r.IntRange(1, 5)),
			Len: core.Time(r.IntRange(2, 10)),
		})
	}
	return inst
}

func runSearch(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "search",
		Title: "adversarial search for worst-case LSRC ratios",
		Paper: "extension of the Figure 4 discussion",
	}
	r.Notes = append(r.Notes,
		"hill climbing over α-restricted instances (n<=6, exact reference), keeping mutations that worsen the LSRC ratio",
		"the engineered Prop-2 family needs m=k²(k-1) processors; this search probes what small random-ish instances reach")

	alphas := []float64{0.5, 2.0 / 3}
	iters := 300
	restarts := 6
	if cfg.Quick {
		iters = 40
		restarts = 2
	}
	type out struct {
		alpha float64
		best  searchState
		err   error
	}
	outs := parMap(cfg, len(alphas), func(ai int) out {
		alpha := alphas[ai]
		m := 6
		maxQ := int(alpha * float64(m))
		maxU := m - maxQ
		var best searchState
		for rs := 0; rs < restarts; rs++ {
			rr := rng.NewStream(cfg.Seed^0x5EA2C4, uint64(ai*1000+rs)+1)
			cur := searchState{inst: seedInstance(rr, m, alpha)}
			ratio, ok := evalRatio(cur.inst, 200_000)
			if !ok {
				continue
			}
			cur.ratio = ratio
			for it := 0; it < iters; it++ {
				cand := mutate(rr, cur, maxQ, maxU)
				cr, ok := evalRatio(cand, 200_000)
				if !ok {
					continue
				}
				if cr > cur.ratio {
					cur = searchState{inst: cand, ratio: cr}
				}
			}
			if cur.ratio > best.ratio {
				best = cur
			}
		}
		if best.inst == nil {
			return out{err: fmt.Errorf("search: no feasible instance found for α=%.2f", alpha)}
		}
		return out{alpha: alpha, best: best}
	})

	t := stats.NewTable("alpha", "found ratio", "B2(alpha)", "Prop2 bound", "upper 2/alpha", "m", "n")
	allSound := true
	allNontrivial := true
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		upper := bounds.AlphaUpper(o.alpha)
		if o.best.ratio > upper+1e-9 {
			allSound = false
		}
		if o.best.ratio < 1.2 {
			allNontrivial = false
		}
		t.AddRow(o.alpha, o.best.ratio, bounds.B2(o.alpha), bounds.Prop2(o.alpha), upper,
			o.best.inst.M, len(o.best.inst.Jobs))
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "worst LSRC ratios found by hill climbing (small instances)",
		Table:   t,
	})
	r.check("no found instance violates the 2/α guarantee", allSound, "sound upper bound")
	r.check("search escapes the trivial regime (ratio > 1.2 at every α)", allNontrivial,
		"hill climbing finds genuinely bad instances")
	r.Notes = append(r.Notes,
		"found ratios sit below the Prop-2 bound, as expected: attaining it needs the engineered family's scale (fig3)")
	return r, nil
}
