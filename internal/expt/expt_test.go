package expt

import (
	"strings"
	"sync/atomic"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "alpha", "fcfs", "fig1", "fig2", "fig3", "fig4", "graham", "online", "scale", "search"}
	got := List()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("fig3"); !ok {
		t.Fatal("fig3 missing")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus id found")
	}
}

// TestEveryExperimentPassesChecks runs the whole registry in quick mode:
// this is the repository's central "paper claims hold" integration test.
func TestEveryExperimentPassesChecks(t *testing.T) {
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %q", rep.ID)
			}
			for _, c := range rep.Checks {
				if !c.Pass {
					t.Errorf("check failed: %s — %s", c.Name, c.Detail)
				}
			}
			if len(rep.Tables) == 0 {
				t.Error("no tables produced")
			}
			out := rep.Render()
			if !strings.Contains(out, "PASS") || !strings.Contains(out, e.ID) {
				t.Errorf("render missing content:\n%s", out)
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed -> identical rendered report (tables carry all numbers).
	for _, id := range []string{"fig3", "graham"} {
		e, _ := Get(id)
		a, err := e.Run(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func TestParMapOrdersAndCovers(t *testing.T) {
	cfg := Config{Workers: 4}
	out := parMap(cfg, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParMapSingleWorker(t *testing.T) {
	cfg := Config{Workers: 1}
	var calls int64
	out := parMap(cfg, 10, func(i int) int {
		atomic.AddInt64(&calls, 1)
		return i
	})
	if len(out) != 10 || calls != 10 {
		t.Fatalf("out=%v calls=%d", out, calls)
	}
}

func TestParMapZeroItems(t *testing.T) {
	out := parMap(Config{}, 0, func(i int) int { return i })
	if len(out) != 0 {
		t.Fatal("expected empty")
	}
}

func TestReportAllPassed(t *testing.T) {
	r := &Report{}
	r.check("a", true, "ok")
	if !r.AllPassed() {
		t.Fatal("AllPassed false with all passing")
	}
	r.check("b", false, "bad")
	if r.AllPassed() {
		t.Fatal("AllPassed true with a failure")
	}
	if !strings.Contains(r.Render(), "FAIL") {
		t.Fatal("render should show FAIL")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reps, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(List()) {
		t.Fatalf("got %d reports", len(reps))
	}
}
