package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestHandlerSurface checks the three mounts: /metrics parses strictly,
// /healthz tracks the readiness func, and pprof answers.
func TestHandlerSurface(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("h_total", "h").Add(3)
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(Handler(r, ready.Load))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ctype != ContentType {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	exp, err := ParseExposition([]byte(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if v, ok := exp.Value("h_total", nil); !ok || v != 3 {
		t.Errorf("h_total = %v, %v", v, ok)
	}

	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz ready = %d %q", code, body)
	}
	ready.Store(false)
	if code, _, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz draining = %d", code)
	}

	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ index = %d", code)
	}
}

// TestHandlerWithWarn checks the degraded state: ready + warning answers
// 200 with the warning body (serving, but impaired); unready still wins
// with 503; an empty warning is plain "ok".
func TestHandlerWithWarn(t *testing.T) {
	r := NewRegistry()
	var ready atomic.Bool
	ready.Store(true)
	var msg atomic.Value
	msg.Store("")
	srv := httptest.NewServer(HandlerWithWarn(r, ready.Load, func() string {
		return msg.Load().(string)
	}))
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || body != "ok\n" {
		t.Errorf("healthy = %d %q", code, body)
	}
	msg.Store("wal: replay dropped 1 torn + 0 corrupt records (12B)")
	if code, body := get(); code != 200 || body != "warning: wal: replay dropped 1 torn + 0 corrupt records (12B)\n" {
		t.Errorf("degraded = %d %q", code, body)
	}
	ready.Store(false)
	if code, _ := get(); code != http.StatusServiceUnavailable {
		t.Errorf("draining while degraded = %d, want 503", code)
	}
}
