package obs

import (
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// runtimeStats caches one runtime.ReadMemStats capture so a scrape of
// the whole runtime family pays a single stop-the-world read — and a
// burst of scrapes (several gauges in one Gather) pays one per refresh
// window, not one per gauge.
type runtimeStats struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

// runtimeRefresh is how stale a cached MemStats capture may be before
// the next reader refreshes it. One second is far below any scrape
// interval, so every scrape sees fresh numbers while same-scrape
// gauges share a capture.
const runtimeRefresh = time.Second

func (c *runtimeStats) read() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) >= runtimeRefresh {
		runtime.ReadMemStats(&c.stats)
		c.at = now
	}
	return &c.stats
}

// gcPauseP99 estimates the 99th-percentile GC pause from the MemStats
// pause ring (the newest min(NumGC, 256) pauses), in seconds.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	for i := 0; i < n; i++ {
		pauses[i] = ms.PauseNs[(int(ms.NumGC)+len(ms.PauseNs)-1-i)%len(ms.PauseNs)]
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (n*99 + 99) / 100
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e9
}

// RegisterRuntime registers the process self-metrics every service
// binary should expose:
//
//	resd_build_info{version,go}   constant 1; the labels carry the build
//	resd_uptime_seconds           seconds since registration
//	resd_goroutines               live goroutine count
//	resd_gc_pause_p99_seconds     p99 GC stop-the-world pause (pause ring)
//	resd_heap_inuse_bytes         bytes in in-use heap spans
//	resd_gc_total                 completed GC cycles
//
// version "" falls back to the main module's version from build info
// ("devel" when unavailable). The MemStats-backed gauges share one
// cached capture refreshed at most once per second, so scraping the
// family costs one ReadMemStats, not five.
func RegisterRuntime(reg *Registry, version string) {
	if reg == nil {
		return
	}
	if version == "" {
		version = "devel"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
	}
	start := time.Now()
	cache := &runtimeStats{}
	reg.GaugeFunc("resd_build_info",
		"Build identity: constant 1, labelled with the binary's version and Go toolchain.",
		func() float64 { return 1 },
		L("version", version), L("go", runtime.Version()))
	reg.GaugeFunc("resd_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("resd_goroutines",
		"Live goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("resd_gc_pause_p99_seconds",
		"99th-percentile GC stop-the-world pause over the runtime's pause ring.",
		func() float64 { return gcPauseP99(cache.read()) })
	reg.GaugeFunc("resd_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 { return float64(cache.read().HeapInuse) })
	reg.CounterFunc("resd_gc_total",
		"Completed GC cycles.",
		func() uint64 { return uint64(cache.read().NumGC) })
}
