package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler mounts the observability surface on one mux:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        readiness probe: 200 while ready() is true, 503 after
//	/debug/pprof/*  the standard runtime profiles
//
// ready may be nil, in which case /healthz always answers 200. The
// handler is what `resdsrv -obs ADDR` serves; tests mount it on
// httptest servers to scrape in-process.
func Handler(reg *Registry, ready func() bool) http.Handler {
	return HandlerWithWarn(reg, ready, nil)
}

// HandlerWithWarn is Handler with a degraded state between healthy and
// unready: while ready() holds but warn() reports a message, /healthz
// still answers 200 (the process serves; restarting it would not help)
// with the message as the body instead of "ok", so probes and humans see
// the degradation. resdsrv wires WAL damage (a shard that logged
// corruption or stopped logging) through warn. A nil warn behaves like
// Handler.
func HandlerWithWarn(reg *Registry, ready func() bool, warn func() string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			panic(http.ErrAbortHandler)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if warn != nil {
			if msg := warn(); msg != "" {
				w.Write([]byte("warning: " + msg + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
