// Package obs is the service's zero-dependency observability layer: a
// metrics registry with lock-free instruments, a Prometheus-text-format
// exposition endpoint, and the HTTP surface (metrics, health, pprof)
// that `resdsrv -obs` serves.
//
// # Design
//
// The service's hot paths are single-writer event loops that already
// publish load summaries through plain atomics once per batch. The
// registry leans on that instead of fighting it: instruments are
// individual atomic words (Counter, Gauge) or atomic bucket arrays
// (Histogram, the multi-writer variant of stats.ExpHist), and anything a
// loop already publishes is surfaced with CounterFunc/GaugeFunc closures
// read at scrape time — snapshot-on-scrape, zero coordination on the
// admission path. Dynamic label sets (one series per live tenant, per
// shard quantile) register Collect callbacks that walk the owning
// subsystem's snapshot API when a scrape arrives.
//
// A nil *Registry is the no-op sink: every constructor still returns a
// working instrument, so instrumented code is written once and the
// "observability off" configuration costs a nil check and dead atomics
// that are never read. BenchmarkObsOverhead (repository root, recorded
// in BENCH_obs.json and gated by `cmd/benchgate -obs`) holds the
// instrumented-vs-nil gap under the budget.
//
// # Exposition
//
// WritePrometheus renders text format 0.0.4: families in name order,
// # HELP and # TYPE once each, samples with deterministic label order,
// histograms exposed as summaries with quantile labels 0.5/0.9/0.99
// plus _count/_sum. ParseExposition is the strict inverse — stricter
// than scrapers require (contiguous families, declared-before-use, no
// duplicate series, trailing newline) — so the parser doubles as the
// writer's conformance test; CI's obs-smoke job feeds it a live scrape
// from a running resdsrv.
//
// The metric names the service exposes are tabulated in the resd
// package documentation (internal/resd/doc.go).
package obs
