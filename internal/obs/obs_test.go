package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryEndToEnd exercises every instrument kind through a full
// write-then-parse round trip: the strict parser must accept everything
// the writer emits, and the parsed values must match the instruments.
func TestRegistryEndToEnd(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Operations.", L("kind", "reserve"))
	c.Add(41)
	c.Inc()
	r.NewCounter("test_ops_total", "Operations.", L("kind", "cancel")).Add(7)
	g := r.NewGauge("test_depth", "Queue depth.")
	g.Set(12)
	g.Add(-2)
	r.CounterFunc("test_fn_total", "Func counter.", func() uint64 { return 99 })
	r.GaugeFunc("test_ratio", "Func gauge.", func() float64 { return 0.25 }, L("shard", "0"))
	h := r.NewHistogram("test_latency_ns", "Latency.")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	r.Collect(KindGauge, "test_dyn", "Dynamic.", func(e Emitter) {
		e.Emit(1, L("tenant", "acme"))
		e.Emit(2, L("tenant", "zeta"))
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseExposition of own output:\n%s\nerr: %v", buf.String(), err)
	}

	if v, ok := exp.Value("test_ops_total", map[string]string{"kind": "reserve"}); !ok || v != 42 {
		t.Errorf("ops_total{reserve} = %v, %v", v, ok)
	}
	if v, ok := exp.Value("test_depth", nil); !ok || v != 10 {
		t.Errorf("depth = %v, %v", v, ok)
	}
	if v, ok := exp.Value("test_fn_total", nil); !ok || v != 99 {
		t.Errorf("fn_total = %v, %v", v, ok)
	}
	if v, ok := exp.Value("test_ratio", map[string]string{"shard": "0"}); !ok || v != 0.25 {
		t.Errorf("ratio = %v, %v", v, ok)
	}
	if v, ok := exp.Value("test_dyn", map[string]string{"tenant": "zeta"}); !ok || v != 2 {
		t.Errorf("dyn{zeta} = %v, %v", v, ok)
	}
	f := exp.Family("test_latency_ns")
	if f == nil || f.Type != "summary" {
		t.Fatalf("latency family = %+v", f)
	}
	p50, ok := exp.Value("test_latency_ns", map[string]string{"quantile": "0.5"})
	if !ok {
		t.Fatal("no p50 sample")
	}
	if p50 < 500 || p50 >= 1024 {
		t.Errorf("p50 = %v, want in [500, 1024)", p50)
	}
	p99, _ := exp.Value("test_latency_ns", map[string]string{"quantile": "0.99"})
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
	cnt := 0.0
	for _, s := range f.Samples {
		if s.Name == "test_latency_ns_count" {
			cnt = s.Value
		}
	}
	if cnt != 1000 {
		t.Errorf("latency count = %v, want 1000", cnt)
	}
}

// TestNilRegistryIsNoop: every constructor on a nil registry returns a
// working instrument and nothing is scraped.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.NewCounter("x_total", "x").Inc()
	r.NewGauge("x", "x").Set(5)
	r.NewHistogram("x_ns", "x").Observe(10)
	r.CounterFunc("y_total", "y", func() uint64 { return 1 })
	r.GaugeFunc("y", "y", func() float64 { return 1 })
	r.Collect(KindGauge, "z", "z", func(e Emitter) { e.Emit(1) })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry scrape: %q, %v", buf.String(), err)
	}
}

// TestLabelEscaping: hostile label values survive a write/parse round
// trip byte for byte.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "a\"b\\c\nd"
	r.NewGauge("esc", "Escape test.", L("v", hostile)).Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	f := exp.Family("esc")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("family = %+v", f)
	}
	if got := f.Samples[0].Labels["v"]; got != hostile {
		t.Errorf("label round trip = %q, want %q", got, hostile)
	}
}

// TestParserRejections: each malformed document must fail.
func TestParserRejections(t *testing.T) {
	cases := map[string]string{
		"no trailing newline":   "# TYPE a gauge\na 1",
		"sample before TYPE":    "a 1\n",
		"blank line":            "# TYPE a gauge\n\na 1\n",
		"second TYPE":           "# TYPE a gauge\n# TYPE a gauge\na 1\n",
		"HELP after TYPE":       "# TYPE a gauge\n# HELP a x\na 1\n",
		"unknown type":          "# TYPE a pie\na 1\n",
		"sample outside family": "# TYPE a gauge\nb 1\n",
		"count on gauge":        "# TYPE a gauge\na_count 1\n",
		"quantile on counter":   "# TYPE a counter\na{quantile=\"0.5\"} 1\n",
		"negative counter":      "# TYPE a counter\na -1\n",
		"duplicate series":      "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
		"bad value":             "# TYPE a gauge\na one\n",
		"unterminated labels":   "# TYPE a gauge\na{x=\"1\" 1\n",
		"unquoted label":        "# TYPE a gauge\na{x=1} 1\n",
		"bad escape":            "# TYPE a gauge\na{x=\"\\t\"} 1\n",
		"trailing comma":        "# TYPE a gauge\na{x=\"1\",} 1\n",
		"duplicate label":       "# TYPE a gauge\na{x=\"1\",x=\"2\"} 1\n",
		"stray comment":         "# TYPE a gauge\n# EOF\na 1\n",
		"dangling HELP":         "# HELP a x\na 1\n",
		"bad metric name":       "# TYPE 1a gauge\n1a 1\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition([]byte(doc)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, doc)
		}
	}
	// And the valid shapes near those edges still parse.
	good := "# HELP a A gauge.\n# TYPE a gauge\na 1\na{x=\"1\"} 2\n" +
		"# TYPE b summary\nb{quantile=\"0.5\"} 3\nb_count 4\nb_sum 5\n" +
		"# TYPE c counter\nc +Inf\n"
	if _, err := ParseExposition([]byte(good)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

// TestFormatValue pins the exposition value grammar.
func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		42:           "42",
		1e6:          "1000000",
		0.25:         "0.25",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

// TestDuplicateRegistrationPanics: the same series registered twice is a
// startup panic, not a scrape-time surprise.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "d", L("a", "1"))
	mustPanic(t, "same series", func() { r.NewCounter("dup_total", "d", L("a", "1")) })
	mustPanic(t, "kind conflict", func() { r.NewGauge("dup_total", "d") })
	mustPanic(t, "help conflict", func() { r.NewCounter("dup_total", "other", L("a", "2")) })
	mustPanic(t, "bad name", func() { r.NewCounter("1bad", "d") })
	mustPanic(t, "bad label", func() { r.NewCounter("ok_total", "d", L("1bad", "x")) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

// TestConcurrentScrape hammers instruments from many goroutines while
// scraping; run under -race this is the lock-freedom proof, and every
// scrape must still parse.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "c")
	h := r.NewHistogram("ch_ns", "h")
	g := r.NewGauge("cg", "g")
	stop := make(chan struct{})
	var wg, started sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		started.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				c.Inc()
				g.Set(i)
				h.Observe(seed + i%1000)
				if i == 0 {
					started.Done()
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(int64(w))
	}
	started.Wait() // every writer has hit every instrument at least once
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if _, err := ParseExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d does not parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 {
		t.Error("counter never advanced")
	}
}

// TestSummarySuffixOrdering: the writer emits quantile lines before
// _count/_sum and all under one TYPE header.
func TestSummarySuffixOrdering(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("s_ns", "s").Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE") != 1 {
		t.Errorf("want one TYPE line:\n%s", out)
	}
	if strings.Index(out, `quantile="0.99"`) > strings.Index(out, "s_ns_count") {
		t.Errorf("quantiles after _count:\n%s", out)
	}
}
