package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindSummary
)

// String renders the kind as its Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSummary:
		return "summary"
	}
	return "untyped"
}

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one exposition line: a metric name (the family name, or the
// family name with a _count/_sum suffix under a summary), its labels and
// the value at scrape time.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// family groups every collector publishing under one metric name.
type family struct {
	name, help string
	kind       Kind
	collectors []func(emit func(Sample))
	seen       map[string]struct{} // static label sets, duplicate-registration guard
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes a lock; the instruments handed
// back are lock-free atomics, so instrumented hot paths never contend
// with each other or with scrapes. Dynamic label sets (e.g. one gauge
// per live tenant) register a collector callback instead, sampled once
// per scrape.
//
// A nil *Registry is a valid no-op sink: every New* method returns a
// usable instrument that is simply never scraped, and collector
// registration does nothing. This is what "instrumentation off" means —
// callers write the same code and pass nil.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the family for name, creating it on first use, and
// panics on a name/kind/help conflict — conflicting registrations are
// programmer errors, caught at startup, not at scrape.
func (r *Registry) family(name, help string, kind Kind) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, seen: make(map[string]struct{})}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different kind")
	}
	if f.help != help {
		panic("obs: metric " + name + " re-registered with different help")
	}
	return f
}

// checkLabels validates a static label set and guards against the same
// family+labels being registered twice.
func (f *family) checkLabels(labels []Label) {
	key := renderLabels(labels)
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + l.Name + " on " + f.name)
		}
	}
	if _, dup := f.seen[key]; dup {
		panic("obs: duplicate series " + f.name + key)
	}
	f.seen[key] = struct{}{}
}

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// NewCounter registers and returns a counter with fixed labels.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	if r == nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindCounter)
	f.checkLabels(labels)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		emit(Sample{Name: name, Labels: labels, Value: float64(c.Value())})
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the snapshot-on-scrape shape used to surface counters a
// single-writer loop already publishes through its own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindCounter)
	f.checkLabels(labels)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		emit(Sample{Name: name, Labels: labels, Value: float64(fn())})
	})
}

// Gauge is a lock-free gauge over int64 values.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers and returns a gauge with fixed labels.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	if r == nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge)
	f.checkLabels(labels)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		emit(Sample{Name: name, Labels: labels, Value: float64(g.Value())})
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge)
	f.checkLabels(labels)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		emit(Sample{Name: name, Labels: labels, Value: fn()})
	})
}

// Histogram is the multi-writer atomic variant of stats.ExpHist: the same
// exponential bucket geometry, each bucket an atomic counter, so any
// number of goroutines may Observe concurrently without locks. It is
// exposed as a Prometheus summary with quantile labels 0.5/0.9/0.99 plus
// _count and _sum, computed from a bucket snapshot at scrape time.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [stats.ExpBuckets]atomic.Uint64
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[stats.ExpBucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the current bucket counters into dst and returns their
// total — the raw material for windowed aggregation: two snapshots taken
// over a stats.SnapRing delta to the exact observation counts between
// them. Like Quantile it is a point-in-time read of the atomics, safe
// against any number of concurrent Observes.
func (h *Histogram) Snapshot(dst *[stats.ExpBuckets]uint64) (total uint64) {
	for b := range h.buckets {
		n := h.buckets[b].Load()
		dst[b] = n
		total += n
	}
	return total
}

// Quantile answers q from a point-in-time snapshot of the buckets; the
// answer is a bucket upper bound, at least the true quantile and less
// than twice it.
func (h *Histogram) Quantile(q float64) int64 {
	var snap [stats.ExpBuckets]uint64
	var total uint64
	for b := range h.buckets {
		n := h.buckets[b].Load()
		snap[b] = n
		total += n
	}
	return stats.ExpQuantileFromBuckets(&snap, total, q)
}

// histQuantiles are the quantile labels a Histogram exposes.
var histQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}}

// NewHistogram registers and returns a histogram with fixed labels,
// exposed as a summary family.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	if r == nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindSummary)
	f.checkLabels(labels)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		var snap [stats.ExpBuckets]uint64
		var total uint64
		for b := range h.buckets {
			n := h.buckets[b].Load()
			snap[b] = n
			total += n
		}
		for _, hq := range histQuantiles {
			ql := append(append([]Label(nil), labels...), L("quantile", hq.label))
			emit(Sample{Name: name, Labels: ql, Value: float64(stats.ExpQuantileFromBuckets(&snap, total, hq.q))})
		}
		emit(Sample{Name: name + "_count", Labels: labels, Value: float64(total)})
		emit(Sample{Name: name + "_sum", Labels: labels, Value: float64(h.sum.Load())})
	})
	return h
}

// Emitter hands samples out of a Collect callback. Emit publishes under
// the family name; EmitSuffix publishes under name+suffix (for a summary
// family's _count/_sum series).
type Emitter struct {
	fam     string
	samples *[]Sample
}

// Emit appends one sample under the family name.
func (e Emitter) Emit(v float64, labels ...Label) {
	*e.samples = append(*e.samples, Sample{Name: e.fam, Labels: labels, Value: v})
}

// EmitSuffix appends one sample under the family name plus suffix
// (which must be "_count" or "_sum").
func (e Emitter) EmitSuffix(suffix string, v float64, labels ...Label) {
	*e.samples = append(*e.samples, Sample{Name: e.fam + suffix, Labels: labels, Value: v})
}

// Collect registers a dynamic collector for one family: collect is
// invoked on every scrape and may emit any number of samples with
// whatever labels exist at that moment (per-tenant series, per-shard
// quantiles). Collectors must be fast and must not block on the paths
// they observe.
func (r *Registry) Collect(kind Kind, name, help string, collect func(e Emitter)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	f.collectors = append(f.collectors, func(emit func(Sample)) {
		var buf []Sample
		collect(Emitter{fam: name, samples: &buf})
		for _, s := range buf {
			emit(s)
		}
	})
}

// Gather snapshots every family: collectors run, samples sort into the
// deterministic exposition order (family name, then rendered labels).
// The result is what WritePrometheus renders.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []Sample
	for _, f := range fams {
		start := len(out)
		for _, c := range f.collectors {
			c(func(s Sample) { out = append(out, s) })
		}
		sub := out[start:]
		sort.SliceStable(sub, func(i, j int) bool {
			if sub[i].Name != sub[j].Name {
				return sub[i].Name < sub[j].Name
			}
			return renderLabels(sub[i].Labels) < renderLabels(sub[j].Labels)
		})
	}
	return out
}

// renderLabels renders a label set as {a="x",b="y"} with escaping, or ""
// when empty.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// sampleKey is the duplicate-detection identity of a sample.
func sampleKey(s Sample) string {
	return s.Name + renderLabels(s.Labels)
}
