package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the value scrape responses should carry in Content-Type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the Prometheus text exposition
// format, version 0.0.4: one # HELP and # TYPE line per family followed
// by its samples, families in name order, samples in deterministic label
// order, duplicate series rejected. The output always ends with a
// newline and always parses under ParseExposition — the strict parser is
// the writer's contract, enforced by tests and the CI smoke job.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	samples := r.Gather()
	r.mu.Lock()
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.Unlock()

	dup := make(map[string]struct{}, len(samples))
	cur := ""
	for _, s := range samples {
		fam := familyNameOf(s.Name, fams)
		f := fams[fam]
		if f == nil {
			return fmt.Errorf("obs: sample %q has no family", s.Name)
		}
		if fam != cur {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n",
				fam, escapeHelp(f.help), fam, f.kind); err != nil {
				return err
			}
			cur = fam
		}
		key := sampleKey(s)
		if _, seen := dup[key]; seen {
			return fmt.Errorf("obs: duplicate series %s", key)
		}
		dup[key] = struct{}{}
		if _, err := fmt.Fprintf(bw, "%s%s %s\n",
			s.Name, renderLabels(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// familyNameOf strips a summary suffix when the base name is a
// registered summary family.
func familyNameOf(name string, fams map[string]*family) string {
	for _, suf := range []string{"_count", "_sum"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := fams[base]; ok && f.kind == KindSummary {
				return base
			}
		}
	}
	return name
}

// formatValue renders a sample value: integral floats print without an
// exponent (the common case for counters), everything else with Go's
// shortest round-trip form; infinities use the exposition spellings.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ParsedSample is one decoded exposition line.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one decoded metric family.
type ParsedFamily struct {
	Name, Help, Type string
	Samples          []ParsedSample
}

// Exposition is a fully validated scrape.
type Exposition struct {
	Families []ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *ParsedFamily {
	return e.byName[name]
}

// Value returns the value of the sample in family name whose labels are
// a superset of want, and whether exactly one such sample exists.
func (e *Exposition) Value(name string, want map[string]string) (float64, bool) {
	f := e.byName[name]
	if f == nil {
		return 0, false
	}
	found, n := 0.0, 0
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			found, n = s.Value, n+1
		}
	}
	return found, n == 1
}

// ParseExposition is a strict parser for the Prometheus text format as
// this package writes it. It enforces more than scrapers require — HELP
// then TYPE then samples, families contiguous and declared before use,
// summary suffixes only under summary families, quantile labels only on
// summary quantile lines, no duplicate series, counters non-negative, a
// trailing newline — so a passing parse certifies the writer, not just
// the reader. CI's smoke job runs a live scrape through it.
func ParseExposition(data []byte) (*Exposition, error) {
	text := string(data)
	if text == "" {
		return &Exposition{byName: map[string]*ParsedFamily{}}, nil
	}
	if !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("obs: exposition does not end in a newline")
	}
	exp := &Exposition{byName: map[string]*ParsedFamily{}}
	var cur *ParsedFamily
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	dup := map[string]struct{}{}
	pendingHelp := ""
	pendingHelpName := ""
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := ln + 1
		switch {
		case line == "":
			return nil, fmt.Errorf("obs: line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("obs: line %d: malformed HELP", lineNo)
			}
			if helpSeen[name] {
				return nil, fmt.Errorf("obs: line %d: second HELP for %s", lineNo, name)
			}
			if typeSeen[name] {
				return nil, fmt.Errorf("obs: line %d: HELP for %s after its TYPE", lineNo, name)
			}
			helpSeen[name] = true
			pendingHelp, pendingHelpName = help, name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Split(line[len("# TYPE "):], " ")
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE", lineNo)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown type %q", lineNo, typ)
			}
			if typeSeen[name] {
				return nil, fmt.Errorf("obs: line %d: second TYPE for %s", lineNo, name)
			}
			typeSeen[name] = true
			if pendingHelpName != "" && pendingHelpName != name {
				return nil, fmt.Errorf("obs: line %d: HELP for %s not followed by its TYPE", lineNo, pendingHelpName)
			}
			exp.Families = append(exp.Families, ParsedFamily{Name: name, Help: pendingHelp, Type: typ})
			cur = &exp.Families[len(exp.Families)-1]
			exp.byName[name] = cur
			pendingHelp, pendingHelpName = "", ""
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("obs: line %d: stray comment %q", lineNo, line)
		default:
			if pendingHelpName != "" {
				return nil, fmt.Errorf("obs: line %d: HELP for %s not followed by its TYPE", lineNo, pendingHelpName)
			}
			s, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
			}
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: sample %s before any TYPE", lineNo, s.Name)
			}
			if err := checkSampleInFamily(s, cur); err != nil {
				return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
			}
			key := s.Name + canonicalLabels(s.Labels)
			if _, seen := dup[key]; seen {
				return nil, fmt.Errorf("obs: line %d: duplicate series %s", lineNo, key)
			}
			dup[key] = struct{}{}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if pendingHelpName != "" {
		return nil, fmt.Errorf("obs: HELP for %s not followed by its TYPE", pendingHelpName)
	}
	for i := range exp.Families {
		// Re-point byName at the final slice locations (appends may have
		// moved the backing array while families were still being added).
		exp.byName[exp.Families[i].Name] = &exp.Families[i]
	}
	return exp, nil
}

// checkSampleInFamily enforces family membership: the sample name must
// be the family name, or family+{_count,_sum} under a summary; quantile
// labels appear only on summary quantile lines; counter values are
// non-negative.
func checkSampleInFamily(s ParsedSample, f *ParsedFamily) error {
	base := s.Name == f.Name
	suffix := f.Type == "summary" && (s.Name == f.Name+"_count" || s.Name == f.Name+"_sum")
	if !base && !suffix {
		return fmt.Errorf("sample %s outside family %s", s.Name, f.Name)
	}
	if _, hasQ := s.Labels["quantile"]; hasQ {
		if f.Type != "summary" || !base {
			return fmt.Errorf("quantile label on non-summary sample %s", s.Name)
		}
	}
	if f.Type == "counter" && s.Value < 0 {
		return fmt.Errorf("counter %s has negative value %v", s.Name, s.Value)
	}
	if f.Type == "summary" && suffix && s.Value < 0 && strings.HasSuffix(s.Name, "_count") {
		return fmt.Errorf("summary count %s negative", s.Name)
	}
	return nil
}

// parseSampleLine decodes `name{a="x",b="y"} value` (labels optional).
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	i := 0
	for i < len(line) && isNameRune(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	s.Labels = map[string]string{}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		// Find the closing brace respecting escaped quotes.
		inStr := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inStr && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inStr = !inStr
			case !inStr && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	valStr := rest[1:]
	if valStr == "" || valStr != strings.TrimSpace(valStr) {
		return s, fmt.Errorf("malformed value %q", valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes the inside of a {...} label set.
func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("unquoted label value after %q", name)
		}
		body = body[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(body); i++ {
			c := body[i]
			switch {
			case c == '\\':
				if i+1 >= len(body) {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				i++
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", body[i], name)
				}
			case c == '"':
				into[name] = val.String()
				body = body[i+1:]
				closed = true
			default:
				val.WriteByte(c)
			}
			if closed {
				break
			}
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		if body == "" {
			return nil
		}
		if !strings.HasPrefix(body, ",") || len(body) == 1 {
			return fmt.Errorf("malformed label separator in %q", body)
		}
		body = body[1:]
	}
	return nil
}

// canonicalLabels renders a parsed label map in sorted order for
// duplicate detection.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func isNameRune(c byte, first bool) bool {
	alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}
