// Package verify checks schedules for feasibility and materialises concrete
// per-processor assignments.
//
// Feasibility in the RESASCHEDULING model (§3.1 of the paper) requires that
// at every instant the processors used by running jobs plus the processors
// held by active reservations never exceed m. Because the model is
// non-contiguous, an aggregate capacity check is equivalent to the existence
// of a concrete processor assignment: job executions are time intervals, the
// interval graph they induce is perfect, and its chromatic number equals the
// peak overlap. AssignProcessors constructs such an assignment greedily and
// Verify double-checks the two views against each other.
package verify

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Violation describes one way a schedule fails feasibility.
type Violation struct {
	// Kind classifies the violation.
	Kind ViolationKind
	// JobIdx is the index of the offending job, or -1.
	JobIdx int
	// At is the time of the violation, if applicable.
	At core.Time
	// Detail is a human-readable explanation.
	Detail string
}

// ViolationKind enumerates feasibility failures.
type ViolationKind int

// The feasibility failure classes detected by Check.
const (
	// VUnscheduled: a job has no start time.
	VUnscheduled ViolationKind = iota
	// VNegativeStart: a job starts before time 0.
	VNegativeStart
	// VOverCapacity: jobs plus reservations exceed m processors.
	VOverCapacity
)

func (k ViolationKind) String() string {
	switch k {
	case VUnscheduled:
		return "unscheduled"
	case VNegativeStart:
		return "negative-start"
	case VOverCapacity:
		return "over-capacity"
	}
	return "unknown"
}

// ErrInfeasible is wrapped by all verification failures.
var ErrInfeasible = errors.New("verify: schedule infeasible")

// Check returns all violations of the schedule (empty means feasible and
// complete).
func Check(s *core.Schedule) []Violation {
	var out []Violation
	for i, t := range s.Start {
		switch {
		case t == core.Unscheduled:
			out = append(out, Violation{Kind: VUnscheduled, JobIdx: i,
				Detail: fmt.Sprintf("job %d has no start time", s.Inst.Jobs[i].ID)})
		case t < 0:
			out = append(out, Violation{Kind: VNegativeStart, JobIdx: i, At: t,
				Detail: fmt.Sprintf("job %d starts at %v", s.Inst.Jobs[i].ID, t)})
		}
	}
	usage := s.TotalUsage()
	for i := 0; i < usage.Len(); i++ {
		start, _, v := usage.Segment(i)
		if v > s.Inst.M {
			out = append(out, Violation{Kind: VOverCapacity, JobIdx: -1, At: start,
				Detail: fmt.Sprintf("usage %d > m=%d from t=%v", v, s.Inst.M, start)})
		}
	}
	return out
}

// Verify returns nil when the schedule is complete and feasible, and a
// descriptive error (wrapping ErrInfeasible) otherwise. It additionally
// cross-checks the aggregate capacity view by constructing a concrete
// processor assignment.
func Verify(s *core.Schedule) error {
	if vs := Check(s); len(vs) > 0 {
		return fmt.Errorf("%w: %d violation(s), first: %s", ErrInfeasible, len(vs), vs[0].Detail)
	}
	if _, err := AssignProcessors(s); err != nil {
		return fmt.Errorf("%w: capacity check passed but assignment failed: %v", ErrInfeasible, err)
	}
	return nil
}

// Assignment maps every job and reservation of a schedule to the concrete
// processor IDs (0..m-1) it occupies.
type Assignment struct {
	// JobProcs[i] lists the processors used by Inst.Jobs[i], sorted.
	JobProcs [][]int
	// ResProcs[i] lists the processors held by Inst.Res[i], sorted.
	ResProcs [][]int
}

// event is a start or end of an occupation interval during the sweep.
type event struct {
	at    core.Time
	start bool
	isJob bool
	idx   int
}

// AssignProcessors builds a concrete processor assignment for a feasible
// complete schedule by a left-to-right sweep: at each interval start it
// takes the lowest-numbered free processors; at each end it frees them.
// Ends are processed before starts at equal times (intervals are half-open).
// It fails exactly when the schedule oversubscribes capacity at some time.
func AssignProcessors(s *core.Schedule) (*Assignment, error) {
	inst := s.Inst
	events := make([]event, 0, 2*(len(inst.Jobs)+len(inst.Res)))
	for i, t := range s.Start {
		if t == core.Unscheduled {
			return nil, fmt.Errorf("%w: job %d unscheduled", ErrInfeasible, inst.Jobs[i].ID)
		}
		events = append(events,
			event{t, true, true, i},
			event{t + inst.Jobs[i].Len, false, true, i})
	}
	for i, r := range inst.Res {
		events = append(events, event{r.Start, true, false, i})
		if r.End() != core.Infinity {
			events = append(events, event{r.End(), false, false, i})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		// Frees before takes at equal time.
		return !events[a].start && events[b].start
	})

	// Free processor pool: min-heap semantics via sorted stack is overkill;
	// a simple boolean array plus a scan pointer keeps allocation lowest-ID.
	free := make([]bool, inst.M)
	for i := range free {
		free[i] = true
	}
	takeLowest := func(q int) ([]int, bool) {
		out := make([]int, 0, q)
		for p := 0; p < inst.M && len(out) < q; p++ {
			if free[p] {
				out = append(out, p)
				free[p] = false
			}
		}
		if len(out) < q {
			for _, p := range out {
				free[p] = true
			}
			return nil, false
		}
		return out, true
	}

	asg := &Assignment{
		JobProcs: make([][]int, len(inst.Jobs)),
		ResProcs: make([][]int, len(inst.Res)),
	}
	for _, ev := range events {
		var q int
		if ev.isJob {
			q = inst.Jobs[ev.idx].Procs
		} else {
			q = inst.Res[ev.idx].Procs
		}
		if ev.start {
			procs, ok := takeLowest(q)
			if !ok {
				what := "job"
				id := 0
				if ev.isJob {
					id = inst.Jobs[ev.idx].ID
				} else {
					what = "reservation"
					id = inst.Res[ev.idx].ID
				}
				return nil, fmt.Errorf("%w: no %d free processors for %s %d at t=%v",
					ErrInfeasible, q, what, id, ev.at)
			}
			if ev.isJob {
				asg.JobProcs[ev.idx] = procs
			} else {
				asg.ResProcs[ev.idx] = procs
			}
		} else {
			var procs []int
			if ev.isJob {
				procs = asg.JobProcs[ev.idx]
			} else {
				procs = asg.ResProcs[ev.idx]
			}
			for _, p := range procs {
				free[p] = true
			}
		}
	}
	return asg, nil
}

// CheckAssignment validates that an assignment is consistent with its
// schedule: every job/reservation holds exactly its required number of
// distinct processors, and no processor is held by two overlapping
// occupations.
func CheckAssignment(s *core.Schedule, a *Assignment) error {
	inst := s.Inst
	if len(a.JobProcs) != len(inst.Jobs) || len(a.ResProcs) != len(inst.Res) {
		return fmt.Errorf("%w: assignment shape mismatch", ErrInfeasible)
	}
	type hold struct {
		t0, t1 core.Time
		what   string
	}
	perProc := make(map[int][]hold)
	add := func(procs []int, q int, t0, t1 core.Time, what string) error {
		if len(procs) != q {
			return fmt.Errorf("%w: %s holds %d processors, needs %d", ErrInfeasible, what, len(procs), q)
		}
		seen := map[int]bool{}
		for _, p := range procs {
			if p < 0 || p >= inst.M {
				return fmt.Errorf("%w: %s uses invalid processor %d", ErrInfeasible, what, p)
			}
			if seen[p] {
				return fmt.Errorf("%w: %s uses processor %d twice", ErrInfeasible, what, p)
			}
			seen[p] = true
			perProc[p] = append(perProc[p], hold{t0, t1, what})
		}
		return nil
	}
	for i, j := range inst.Jobs {
		t := s.Start[i]
		if t == core.Unscheduled {
			return fmt.Errorf("%w: job %d unscheduled", ErrInfeasible, j.ID)
		}
		if err := add(a.JobProcs[i], j.Procs, t, t+j.Len, fmt.Sprintf("job %d", j.ID)); err != nil {
			return err
		}
	}
	for i, r := range inst.Res {
		if err := add(a.ResProcs[i], r.Procs, r.Start, r.End(), fmt.Sprintf("reservation %d", r.ID)); err != nil {
			return err
		}
	}
	for p, holds := range perProc {
		sort.Slice(holds, func(a, b int) bool { return holds[a].t0 < holds[b].t0 })
		for i := 1; i < len(holds); i++ {
			if holds[i].t0 < holds[i-1].t1 {
				return fmt.Errorf("%w: processor %d double-booked by %s and %s",
					ErrInfeasible, p, holds[i-1].what, holds[i].what)
			}
		}
	}
	return nil
}
