package verify

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func feasibleFixture() *core.Schedule {
	inst := &core.Instance{
		M: 8,
		Jobs: []core.Job{
			{ID: 0, Procs: 4, Len: 10},
			{ID: 1, Procs: 4, Len: 10},
			{ID: 2, Procs: 8, Len: 5},
		},
		Res: []core.Reservation{{ID: 0, Procs: 4, Start: 20, Len: 5}},
	}
	s := core.NewSchedule(inst)
	s.SetStart(0, 0)
	s.SetStart(1, 0)
	s.SetStart(2, 10)
	return s
}

func TestVerifyFeasible(t *testing.T) {
	if err := Verify(feasibleFixture()); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func TestCheckUnscheduled(t *testing.T) {
	s := feasibleFixture()
	s.Start[1] = core.Unscheduled
	vs := Check(s)
	if len(vs) != 1 || vs[0].Kind != VUnscheduled || vs[0].JobIdx != 1 {
		t.Fatalf("got %+v", vs)
	}
	if err := Verify(s); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Verify = %v", err)
	}
}

func TestCheckNegativeStart(t *testing.T) {
	s := feasibleFixture()
	s.Start[0] = -5
	found := false
	for _, v := range Check(s) {
		if v.Kind == VNegativeStart && v.JobIdx == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("negative start not reported")
	}
}

func TestCheckOverCapacity(t *testing.T) {
	s := feasibleFixture()
	// Move the 8-wide job onto the two 4-wide jobs.
	s.SetStart(2, 5)
	vs := Check(s)
	if len(vs) == 0 || vs[0].Kind != VOverCapacity {
		t.Fatalf("overload not detected: %+v", vs)
	}
}

func TestCheckJobVsReservationConflict(t *testing.T) {
	s := feasibleFixture()
	// The 8-wide job overlapping the 4-proc reservation at t=20.
	s.SetStart(2, 18)
	vs := Check(s)
	if len(vs) == 0 || vs[0].Kind != VOverCapacity {
		t.Fatalf("reservation conflict not detected: %+v", vs)
	}
}

func TestAssignProcessors(t *testing.T) {
	s := feasibleFixture()
	a, err := AssignProcessors(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignment(s, a); err != nil {
		t.Fatal(err)
	}
	// Jobs 0 and 1 overlap: their processor sets must be disjoint.
	used := map[int]bool{}
	for _, p := range a.JobProcs[0] {
		used[p] = true
	}
	for _, p := range a.JobProcs[1] {
		if used[p] {
			t.Fatalf("jobs 0 and 1 share processor %d", p)
		}
	}
	if len(a.JobProcs[2]) != 8 {
		t.Fatalf("full-width job got %d processors", len(a.JobProcs[2]))
	}
}

func TestAssignProcessorsHalfOpenBoundary(t *testing.T) {
	// A job ending exactly when another starts may reuse its processors.
	inst := &core.Instance{M: 2, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 5},
		{ID: 1, Procs: 2, Len: 5},
	}}
	s := core.NewSchedule(inst)
	s.SetStart(0, 0)
	s.SetStart(1, 5)
	a, err := AssignProcessors(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignment(s, a); err != nil {
		t.Fatal(err)
	}
}

func TestAssignProcessorsDetectsOverload(t *testing.T) {
	inst := &core.Instance{M: 2, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 5},
		{ID: 1, Procs: 1, Len: 5},
	}}
	s := core.NewSchedule(inst)
	s.SetStart(0, 0)
	s.SetStart(1, 2)
	if _, err := AssignProcessors(s); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v", err)
	}
}

func TestAssignProcessorsInfiniteReservation(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 2, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: core.Infinity}},
	}
	s := core.NewSchedule(inst)
	s.SetStart(0, 0)
	a, err := AssignProcessors(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignment(s, a); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAssignmentRejectsTampering(t *testing.T) {
	s := feasibleFixture()
	a, err := AssignProcessors(s)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a processor inside one job's set.
	bad := *a
	bad.JobProcs = append([][]int(nil), a.JobProcs...)
	bad.JobProcs[0] = []int{0, 0, 1, 2}
	if err := CheckAssignment(s, &bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("duplicate proc accepted: %v", err)
	}
	// Wrong processor count.
	bad.JobProcs[0] = []int{0}
	if err := CheckAssignment(s, &bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("short assignment accepted: %v", err)
	}
	// Out-of-range processor.
	bad.JobProcs[0] = []int{0, 1, 2, 99}
	if err := CheckAssignment(s, &bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("out-of-range proc accepted: %v", err)
	}
	// Double-booking: give job 1 the same procs as job 0 (they overlap).
	bad.JobProcs = append([][]int(nil), a.JobProcs...)
	bad.JobProcs[1] = a.JobProcs[0]
	if err := CheckAssignment(s, &bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("double booking accepted: %v", err)
	}
}

// TestAssignmentAlwaysExistsForCapacityFeasible is the interval-colouring
// property: any schedule passing the aggregate capacity check admits a
// concrete processor assignment.
func TestAssignmentAlwaysExistsForCapacityFeasible(t *testing.T) {
	r := rng.New(555)
	for trial := 0; trial < 300; trial++ {
		m := r.IntRange(1, 10)
		inst := &core.Instance{M: m}
		n := r.IntRange(1, 12)
		s := core.NewSchedule(inst)
		// Generate random placements, keep only those that fit (rejection).
		usage := make([]int, 100)
		for i := 0; i < n; i++ {
			q := r.IntRange(1, m)
			p := core.Time(r.IntRange(1, 20))
			st := core.Time(r.Intn(60))
			fits := true
			for tm := st; tm < st+p; tm++ {
				if usage[tm]+q > m {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			for tm := st; tm < st+p; tm++ {
				usage[tm] += q
			}
			inst.Jobs = append(inst.Jobs, core.Job{ID: len(inst.Jobs), Procs: q, Len: p})
			s.Start = append(s.Start, st)
		}
		if len(inst.Jobs) == 0 {
			continue
		}
		a, err := AssignProcessors(s)
		if err != nil {
			t.Fatalf("trial %d: capacity-feasible schedule has no assignment: %v", trial, err)
		}
		if err := CheckAssignment(s, a); err != nil {
			t.Fatalf("trial %d: produced assignment invalid: %v", trial, err)
		}
	}
}

func TestViolationKindString(t *testing.T) {
	if VUnscheduled.String() != "unscheduled" ||
		VNegativeStart.String() != "negative-start" ||
		VOverCapacity.String() != "over-capacity" ||
		ViolationKind(99).String() != "unknown" {
		t.Fatal("ViolationKind.String broken")
	}
}
