package verify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// tickOracle is a brute-force per-tick feasibility check used as a
// differential oracle for Check: a complete schedule is feasible iff at
// every integral instant the running jobs plus active reservations fit in
// m. (All times in the generated schedules are integral, so per-tick
// sampling is exact.)
func tickOracle(s *core.Schedule, horizon core.Time) bool {
	for t := core.Time(0); t < horizon; t++ {
		use := 0
		for i, st := range s.Start {
			if st <= t && t < st+s.Inst.Jobs[i].Len {
				use += s.Inst.Jobs[i].Procs
			}
		}
		for _, r := range s.Inst.Res {
			if r.Start <= t && t < r.End() {
				use += r.Procs
			}
		}
		if use > s.Inst.M {
			return false
		}
	}
	return true
}

// TestCheckMatchesTickOracle generates arbitrary (mostly infeasible)
// schedules and demands that Check and the brute-force oracle agree
// exactly.
func TestCheckMatchesTickOracle(t *testing.T) {
	r := rng.New(778899)
	for trial := 0; trial < 400; trial++ {
		m := r.IntRange(1, 6)
		inst := &core.Instance{M: m}
		n := r.IntRange(1, 6)
		for i := 0; i < n; i++ {
			inst.Jobs = append(inst.Jobs, core.Job{
				ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 8)),
			})
		}
		if r.Bool(0.5) {
			inst.Res = append(inst.Res, core.Reservation{
				ID: 0, Procs: r.IntRange(1, m), Start: core.Time(r.Intn(10)),
				Len: core.Time(r.IntRange(1, 8)),
			})
		}
		s := core.NewSchedule(inst)
		for i := range inst.Jobs {
			s.SetStart(i, core.Time(r.Intn(20)))
		}
		violations := Check(s)
		feasible := len(violations) == 0
		oracle := tickOracle(s, 50)
		if feasible != oracle {
			t.Fatalf("trial %d: Check says feasible=%v, oracle says %v\ninstance: %+v\nstarts: %v\nviolations: %+v",
				trial, feasible, oracle, inst, s.Start, violations)
		}
		// Whenever Check passes, the concrete assignment must exist and
		// validate; whenever it fails, AssignProcessors must fail too.
		asg, err := AssignProcessors(s)
		if feasible {
			if err != nil {
				t.Fatalf("trial %d: feasible schedule has no assignment: %v", trial, err)
			}
			if err := CheckAssignment(s, asg); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		} else if err == nil {
			t.Fatalf("trial %d: infeasible schedule got an assignment", trial)
		}
	}
}
