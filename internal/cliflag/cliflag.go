// Package cliflag centralises flag validation for the repository's CLIs.
//
// The generators and simulators behind the commands treat their
// parameters as preconditions — workload.ReservationStream panics on
// α outside (0,1], SynthConfig rejects absurd sizes only deep inside a
// run — so a mistyped flag used to surface as a panic or silently
// garbage output. Every command validates its flags up front with these
// helpers and exits with a one-line message naming the offending flag
// instead.
package cliflag

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// ErrFlag wraps every validation failure so callers can branch on it.
var ErrFlag = errors.New("invalid flag")

// Positive requires v >= 1 (machine sizes, job counts, shard counts).
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%w: -%s must be positive, got %d", ErrFlag, name, v)
	}
	return nil
}

// NonNegative requires v >= 0 (reservation counts, seeds-as-ints).
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%w: -%s must be >= 0, got %d", ErrFlag, name, v)
	}
	return nil
}

// Unit requires v in [0,1] (the α admission parameter, fractions).
func Unit(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%w: -%s must lie in [0,1], got %v", ErrFlag, name, v)
	}
	return nil
}

// PositiveUnit requires v in (0,1] (α when a reservation stream is
// actually drawn: workload.ReservationStream rejects α=0).
func PositiveUnit(name string, v float64) error {
	if v <= 0 || v > 1 {
		return fmt.Errorf("%w: -%s must lie in (0,1], got %v", ErrFlag, name, v)
	}
	return nil
}

// NonNegativeF requires v >= 0 (rates, mean inter-arrival times).
func NonNegativeF(name string, v float64) error {
	if v < 0 {
		return fmt.Errorf("%w: -%s must be >= 0, got %v", ErrFlag, name, v)
	}
	return nil
}

// WritableDir requires path to name a directory this process can create
// files in, creating it (and any parents) if absent. Commands that open
// durable state there (resdsrv's -waldir) validate at flag time, so a
// typo'd or read-only path fails with a one-line message instead of a
// mid-boot open error after the service already started replaying.
func WritableDir(name, path string) error {
	if path == "" {
		return fmt.Errorf("%w: -%s must not be empty", ErrFlag, name)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("%w: -%s: %v", ErrFlag, name, err)
	}
	f, err := os.CreateTemp(path, ".probe-*")
	if err != nil {
		return fmt.Errorf("%w: -%s: %s is not writable: %v", ErrFlag, name, path, err)
	}
	f.Close()
	os.Remove(f.Name())
	return nil
}

// First returns the first non-nil error, letting commands validate a
// whole flag set in one expression.
func First(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RebalanceFlags validates the shared -rebalance/-rebalthreshold/
// -rebalfreeze/-rebalmoves knob set the resdsrv and resload commands
// expose (one definition, so the two CLIs cannot drift). threshold must
// be strictly positive: resd treats a zero Config.RebalanceThreshold as
// "use the default", so accepting an explicit 0 here would silently run
// at 0.1 while the banner claimed otherwise — callers wanting
// act-on-any-imbalance pass a tiny epsilon instead.
func RebalanceFlags(every time.Duration, threshold float64, freeze int64, moves int) error {
	if every < 0 {
		return fmt.Errorf("%w: -rebalance must be >= 0, got %v", ErrFlag, every)
	}
	if err := PositiveUnit("rebalthreshold", threshold); err != nil {
		return err
	}
	if freeze < 0 {
		return fmt.Errorf("%w: -rebalfreeze must be >= 0, got %d", ErrFlag, freeze)
	}
	if moves < 1 {
		return fmt.Errorf("%w: -rebalmoves must be >= 1, got %d", ErrFlag, moves)
	}
	return nil
}
