package cliflag

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

func TestValidators(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		wantErr bool
	}{
		{"positive ok", Positive("m", 64), false},
		{"positive one", Positive("m", 1), false},
		{"positive zero", Positive("m", 0), true},
		{"positive negative", Positive("n", -5), true},
		{"nonnegative ok", NonNegative("nres", 0), false},
		{"nonnegative negative", NonNegative("nres", -1), true},
		{"unit zero", Unit("alpha", 0), false},
		{"unit one", Unit("alpha", 1), false},
		{"unit mid", Unit("alpha", 0.5), false},
		{"unit below", Unit("alpha", -0.01), true},
		{"unit above", Unit("alpha", 1.01), true},
		{"positive-unit ok", PositiveUnit("alpha", 0.5), false},
		{"positive-unit zero", PositiveUnit("alpha", 0), true},
		{"positive-unit above", PositiveUnit("alpha", 2), true},
		{"nonnegativef ok", NonNegativeF("rate", 0), false},
		{"nonnegativef negative", NonNegativeF("rate", -0.5), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if (c.err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", c.err, c.wantErr)
			}
			if c.err != nil && !errors.Is(c.err, ErrFlag) {
				t.Fatalf("error %v does not wrap ErrFlag", c.err)
			}
		})
	}
}

func TestErrorsNameTheFlag(t *testing.T) {
	for flag, err := range map[string]error{
		"m":     Positive("m", -1),
		"nres":  NonNegative("nres", -1),
		"alpha": Unit("alpha", 7),
	} {
		if !strings.Contains(err.Error(), "-"+flag) {
			t.Errorf("error %q does not name -%s", err, flag)
		}
	}
}

func TestFirst(t *testing.T) {
	if err := First(nil, nil, nil); err != nil {
		t.Fatalf("First(nil...) = %v", err)
	}
	e1, e2 := Positive("m", 0), Positive("n", 0)
	if err := First(nil, e1, e2); err != e1 {
		t.Fatalf("First returned %v, want first error %v", err, e1)
	}
}

func TestWritableDir(t *testing.T) {
	base := t.TempDir()
	if err := WritableDir("waldir", base); err != nil {
		t.Fatalf("existing writable dir: %v", err)
	}
	nested := base + "/a/b/c"
	if err := WritableDir("waldir", nested); err != nil {
		t.Fatalf("creatable nested dir: %v", err)
	}
	if _, err := os.Stat(nested); err != nil {
		t.Fatalf("nested dir was not created: %v", err)
	}
	if err := WritableDir("waldir", ""); !errors.Is(err, ErrFlag) {
		t.Fatalf("empty path: err = %v, want ErrFlag", err)
	}
	// A regular file where the directory should be: MkdirAll fails.
	file := base + "/plain"
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WritableDir("waldir", file); !errors.Is(err, ErrFlag) {
		t.Fatalf("path through a file: err = %v, want ErrFlag", err)
	}
	if os.Getuid() != 0 { // root bypasses mode bits
		ro := base + "/ro"
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := WritableDir("waldir", ro); !errors.Is(err, ErrFlag) {
			t.Fatalf("read-only dir: err = %v, want ErrFlag", err)
		}
	}
}

func TestRebalanceFlags(t *testing.T) {
	good := []struct {
		every     time.Duration
		threshold float64
		freeze    int64
		moves     int
	}{
		{0, 0.1, 0, 64},
		{100 * time.Millisecond, 0.25, 1000, 8},
		{time.Second, 1, 0, 1},
	}
	for _, c := range good {
		if err := RebalanceFlags(c.every, c.threshold, c.freeze, c.moves); err != nil {
			t.Errorf("RebalanceFlags(%v, %v, %d, %d) = %v, want nil",
				c.every, c.threshold, c.freeze, c.moves, err)
		}
	}
	bad := []struct {
		every     time.Duration
		threshold float64
		freeze    int64
		moves     int
	}{
		{-time.Second, 0.1, 0, 64},
		{0, -0.1, 0, 64},
		{0, 0, 0, 64}, // explicit 0 would silently run at the default
		{0, 1.5, 0, 64},
		{0, 0.1, -5, 64},
		{0, 0.1, 0, 0},
	}
	for _, c := range bad {
		if err := RebalanceFlags(c.every, c.threshold, c.freeze, c.moves); !errors.Is(err, ErrFlag) {
			t.Errorf("RebalanceFlags(%v, %v, %d, %d) = %v, want ErrFlag",
				c.every, c.threshold, c.freeze, c.moves, err)
		}
	}
}
