// Package flight is the node's black-box flight recorder: a bounded
// structured event journal, a shard-loop health watchdog, and
// on-anomaly diagnostic bundles. It exists because the service's other
// observability (metrics, traces, Watch telemetry) describes the
// workload; flight describes the service itself — whether the
// single-writer loops the α-rule guarantees depend on are actually
// making progress, and what the evidence was when they were not.
//
// # Journal
//
// The Journal is a fixed-size ring of typed Events: severity (info /
// warn / error), a wall-clock stamp plus a monotonic offset, the
// originating subsystem ("resd", "wal", "rebal", "reswire", "flight"),
// the shard (-1 for node-wide), an optional tenant, a message, and
// structured key/value pairs. Hook points across the service feed it:
//
//	resd     WAL replay verdicts, migration commits/aborts, quota
//	         overflow-book activation, slow batch turns, WAL failures
//	wal      log rotations, snapshot writes, snapshot failures
//	rebal    round outcomes, balancer backoff changes
//	reswire  frame errors, down-level clients, watch slow-consumer drops
//	flight   health transitions, bundle captures
//
// Recording is one short mutex hold plus a few atomic adds; event
// rates are operational, not per-request. Per-severity totals mirror
// into the obs registry as flight_events_total{severity}, so an alert
// can fire on error-rate without shipping the journal anywhere. All
// journal methods are nil-receiver safe: hook sites record
// unconditionally and a service without a recorder pays a nil check.
//
// # Watchdog
//
// Each shard loop publishes a heartbeat from its existing batch turn:
// BusySince when a turn begins, LastTurn when it completes (two atomic
// stores per batch, only when a recorder is attached). The monitor
// goroutine samples those probes every Budgets.CheckEvery and judges
// the node against configurable budgets:
//
//	stalled   a loop stuck inside one turn (or queued requests with no
//	          turn) for longer than StallAfter
//	degraded  a request queue at >= 3/4 capacity for QueueFullFor, a
//	          WAL fsync p99 over FsyncP99, or more than FrameErrorBurst
//	          reswire frame errors inside one check period
//
// The worst firing rule is the node state — healthy(0), degraded(1),
// stalled(2) — published as the resd_health_state gauge, served on
// /healthz's warn path (a 200 "warning: ..." body), and journaled on
// every transition. Recovery (the condition clearing) transitions back
// and is journaled too.
//
// # Bundles
//
// When the state worsens — or on demand via Capture or
// POST /debug/flight/capture — the recorder writes a diagnostic bundle
// into Config.Dir: a directory named flight-<unixms>-<seq> holding
//
//	manifest.json    name, reason, time, state, file list
//	journal.json     the full journal tail at capture time
//	goroutines.txt   goroutine dump (pprof debug=2)
//	heap.pprof       heap profile
//	metrics.prom     a full metrics exposition snapshot
//	traces.json      the admission trace ring
//	wal.json         WALInfo plus live per-shard log counters
//	config.json      the effective service configuration
//
// Bundles are written into a hidden temp directory and renamed into
// place, so any visible bundle is complete. Watchdog-triggered
// captures are rate-limited to one per BundleMinInterval (a flapping
// rule cannot fill the disk; suppressed captures are counted and
// journaled); on-demand captures are not. Retention keeps the newest
// BundleKeep bundles and deletes older ones.
//
// # Surfaces
//
// Handler serves GET /debug/flight (state, warning, journal tail,
// bundle inventory), POST /debug/flight/capture, and bundle file
// fetches. resdsrv mounts it next to /metrics when -flightdir or -obs
// is set; `obscheck -flight` fetches and validates the whole surface.
// The Queue type is the journal's bounded non-blocking dispatcher,
// used by resd to run ObsConfig.SlowLog callbacks off the admission
// path.
package flight
