package flight

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Severity classifies a journal event.
type Severity uint8

const (
	// Info records normal-but-notable lifecycle moments (replay
	// verdicts, migration commits, snapshot rotations).
	Info Severity = iota
	// Warn records conditions the service absorbed but an operator
	// should know about (torn WAL tails, slow consumers, backoff).
	Warn
	// Error records damage: a shard degraded to non-durable, corrupt
	// records dropped, a snapshot write that failed.
	Error

	sevCount = 3
)

// String renders the severity the way the exposition labels it.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "unknown"
}

// MarshalJSON encodes the severity as its label string, so journal
// dumps (bundles, /debug/flight) read without a decoder table.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the label string back (round-tripping journal
// dumps through consumers like obscheck).
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = Info
	case `"warn"`:
		*s = Warn
	default:
		*s = Error
	}
	return nil
}

// KV is one structured key/value pair attached to an event.
type KV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one journal record. Wall is the wall-clock stamp (for
// humans correlating with external logs); Mono is the offset from the
// journal's creation on the monotonic clock (for ordering and
// intervals that survive wall-clock jumps). Shard is -1 for node-wide
// events; Tenant is empty unless the event concerns one tenant.
type Event struct {
	Seq    uint64        `json:"seq"`
	Wall   time.Time     `json:"wall"`
	Mono   time.Duration `json:"mono_ns"`
	Sev    Severity      `json:"sev"`
	Subsys string        `json:"subsys"`
	Shard  int           `json:"shard"`
	Tenant string        `json:"tenant,omitempty"`
	Msg    string        `json:"msg"`
	KV     []KV          `json:"kv,omitempty"`
}

// Journal is the bounded structured event journal: a mutex-protected
// ring of typed records plus lock-free per-severity counters, mirrored
// into an obs registry as flight_events_total{severity}. Event rates
// are operational (replays, migrations, damage), not per-request, so
// one short critical section per event is cheap; readers (Tail, the
// HTTP surface, bundles) copy out under the same mutex.
//
// Every method is safe on a nil *Journal and from any goroutine, so
// hook sites record unconditionally.
type Journal struct {
	start time.Time // creation instant; carries the monotonic reading

	seq    atomic.Uint64
	counts [sevCount]atomic.Uint64
	// perSub counts events per (subsystem, severity) — the watchdog's
	// frame-error-burst rule reads reswire's cells as deltas.
	perSub sync.Map // string → *[sevCount]atomic.Uint64

	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// DefaultJournalSize is the ring capacity when Config.JournalSize is 0.
const DefaultJournalSize = 1024

// NewJournal builds a journal with the given ring capacity (<= 0
// selects DefaultJournalSize). With a non-nil registry the per-severity
// totals are registered as flight_events_total{severity}.
func NewJournal(size int, reg *obs.Registry) *Journal {
	if size <= 0 {
		size = DefaultJournalSize
	}
	j := &Journal{start: time.Now(), ring: make([]Event, size)}
	if reg != nil {
		for sev := Severity(0); sev < sevCount; sev++ {
			sev := sev
			reg.CounterFunc("flight_events_total",
				"Flight-journal events recorded, by severity.",
				j.counts[sev].Load, obs.L("severity", sev.String()))
		}
	}
	return j
}

// Record appends one event. kv values are retained as passed — callers
// hand over ownership of the slice.
func (j *Journal) Record(sev Severity, subsys string, shard int, msg string, kv ...KV) {
	j.RecordEvent(Event{Sev: sev, Subsys: subsys, Shard: shard, Msg: msg, KV: kv})
}

// RecordEvent appends ev, filling Seq, Wall and Mono. Use it over
// Record when the event carries a tenant.
func (j *Journal) RecordEvent(ev Event) {
	if j == nil {
		return
	}
	if ev.Sev >= sevCount {
		ev.Sev = Error
	}
	now := time.Now()
	ev.Seq = j.seq.Add(1)
	ev.Wall = now
	ev.Mono = now.Sub(j.start)
	j.counts[ev.Sev].Add(1)
	j.subCell(ev.Subsys)[ev.Sev].Add(1)
	j.mu.Lock()
	j.ring[j.next] = ev
	j.next++
	if j.next == len(j.ring) {
		j.next, j.full = 0, true
	}
	j.mu.Unlock()
}

func (j *Journal) subCell(subsys string) *[sevCount]atomic.Uint64 {
	if v, ok := j.perSub.Load(subsys); ok {
		return v.(*[sevCount]atomic.Uint64)
	}
	v, _ := j.perSub.LoadOrStore(subsys, new([sevCount]atomic.Uint64))
	return v.(*[sevCount]atomic.Uint64)
}

// Count reports how many events of one severity have ever been
// recorded (including ones the ring has since overwritten).
func (j *Journal) Count(sev Severity) uint64 {
	if j == nil || sev >= sevCount {
		return 0
	}
	return j.counts[sev].Load()
}

// SubsysCount reports the per-subsystem total for one severity.
func (j *Journal) SubsysCount(subsys string, sev Severity) uint64 {
	if j == nil || sev >= sevCount {
		return 0
	}
	if v, ok := j.perSub.Load(subsys); ok {
		return v.(*[sevCount]atomic.Uint64)[sev].Load()
	}
	return 0
}

// Tail copies out the newest events, oldest first, up to max (<= 0
// returns the whole ring). Nil journal returns nil.
func (j *Journal) Tail(max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if j.full {
		n = len(j.ring)
	}
	out := make([]Event, 0, n)
	if j.full {
		out = append(out, j.ring[j.next:]...)
	}
	out = append(out, j.ring[:j.next]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Queue is a bounded non-blocking dispatcher: callers offer callbacks
// with Dispatch, a single consumer goroutine runs them in order, and a
// full queue drops the callback (counted) instead of blocking the
// caller. It exists so hot-path hooks — the resd SlowLog callback in
// particular — can hand work to arbitrary user code without that code
// ever being able to stall an admission.
type Queue struct {
	mu      sync.RWMutex
	closed  bool
	ch      chan func()
	done    chan struct{}
	dropped atomic.Uint64
}

// DefaultQueueDepth is the buffer size when NewQueue is given <= 0.
const DefaultQueueDepth = 256

// NewQueue starts the consumer goroutine and returns the queue.
func NewQueue(depth int) *Queue {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	q := &Queue{ch: make(chan func(), depth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for fn := range q.ch {
			fn()
		}
	}()
	return q
}

// Dispatch offers fn to the consumer without blocking. It reports
// whether fn was accepted; a full or closed queue drops it and counts
// the drop. Safe on a nil queue (always a drop).
func (q *Queue) Dispatch(fn func()) bool {
	if q == nil {
		return false
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if !q.closed {
		select {
		case q.ch <- fn:
			return true
		default:
		}
	}
	q.dropped.Add(1)
	return false
}

// Dropped reports how many callbacks were dropped (queue full or
// closed).
func (q *Queue) Dropped() uint64 {
	if q == nil {
		return 0
	}
	return q.dropped.Load()
}

// Close stops accepting callbacks. Already-queued callbacks still run;
// Close does not wait for them (a consumer wedged inside a slow
// callback must not be able to wedge shutdown — the same contract that
// motivates the queue). Use Drained to wait when the callbacks are
// known to terminate.
func (q *Queue) Close() {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// Drained returns a channel closed once the consumer has run every
// queued callback after Close.
func (q *Queue) Drained() <-chan struct{} {
	if q == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return q.done
}
