package flight

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Health is the node health state the watchdog drives:
// healthy → degraded → stalled, and back as conditions clear.
type Health int32

const (
	// Healthy: every budget holds.
	Healthy Health = iota
	// Degraded: a soft budget is blown (queue runaway, fsync p99 over
	// budget, frame-error burst) but the loops make progress.
	Degraded
	// Stalled: a shard event loop has stopped making progress — the
	// α-rule guarantees no longer hold because nothing is admitting.
	Stalled
)

// String renders the state the way /debug/flight and the journal do.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	}
	return "unknown"
}

// MarshalJSON encodes the state as its string.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes the state string back.
func (h *Health) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"healthy"`:
		*h = Healthy
	case `"degraded"`:
		*h = Degraded
	default:
		*h = Stalled
	}
	return nil
}

// Budgets are the watchdog's configurable thresholds. Zero fields
// select the defaults; a negative duration or count disables that rule.
type Budgets struct {
	// CheckEvery is the monitor's probe period (default 250ms).
	CheckEvery time.Duration
	// StallAfter marks a shard loop stalled when it has been inside one
	// batch turn — or has left requests queued without a heartbeat —
	// for this long (default 2s).
	StallAfter time.Duration
	// QueueFullFor marks the node degraded when a shard's request queue
	// has stayed at >= 3/4 capacity for this long (default 1s): the
	// queue-depth-runaway rule.
	QueueFullFor time.Duration
	// FsyncP99 marks the node degraded when a shard's WAL fsync p99
	// exceeds it (default 100ms).
	FsyncP99 time.Duration
	// FrameErrorBurst marks the node degraded when the reswire
	// subsystem journals more than this many warn/error events inside
	// one check period (default 64).
	FrameErrorBurst int
}

// Watchdog budget defaults.
const (
	DefaultCheckEvery      = 250 * time.Millisecond
	DefaultStallAfter      = 2 * time.Second
	DefaultQueueFullFor    = time.Second
	DefaultFsyncP99        = 100 * time.Millisecond
	DefaultFrameErrorBurst = 64
)

func (b Budgets) normalize() Budgets {
	if b.CheckEvery == 0 {
		b.CheckEvery = DefaultCheckEvery
	}
	if b.StallAfter == 0 {
		b.StallAfter = DefaultStallAfter
	}
	if b.QueueFullFor == 0 {
		b.QueueFullFor = DefaultQueueFullFor
	}
	if b.FsyncP99 == 0 {
		b.FsyncP99 = DefaultFsyncP99
	}
	if b.FrameErrorBurst == 0 {
		b.FrameErrorBurst = DefaultFrameErrorBurst
	}
	return b
}

// ShardProbe is one shard's heartbeat as the watchdog samples it: the
// service publishes LastTurn/BusySince from its batch turns (two
// atomic stores per turn) and the probe reads them lock-free.
type ShardProbe struct {
	Shard int
	// LastTurn is when the loop last completed a batch turn (its
	// creation instant before the first turn; zero = unknown).
	LastTurn time.Time
	// BusySince is when the loop entered the turn it is currently
	// inside (zero = idle between turns).
	BusySince time.Time
	// QueueLen and QueueCap describe the loop's request queue.
	QueueLen, QueueCap int
	// FsyncP99 is the shard WAL's observed p99 fsync latency (0 = no
	// WAL or no fsync yet).
	FsyncP99 time.Duration
}

// Sources are the service-side callbacks the watchdog polls and the
// bundler snapshots. All may be nil; Shards nil disables the per-shard
// rules (the frame-burst rule still runs off the journal).
type Sources struct {
	// Shards returns every shard's heartbeat probe.
	Shards func() []ShardProbe
	// Traces returns the admission trace ring for bundles.
	Traces func() any
	// WAL returns the WAL replay/liveness summary for bundles.
	WAL func() any
}

// Config parameterises a Recorder.
type Config struct {
	// Registry receives the recorder's metric families
	// (flight_events_total, resd_health_state, flight_bundles_total).
	// Nil disables metrics.
	Registry *obs.Registry
	// JournalSize is the event ring capacity (0 = DefaultJournalSize).
	JournalSize int
	// Dir is where diagnostic bundles are written ("" disables bundle
	// capture; the journal and watchdog still run).
	Dir string
	// BundleMinInterval rate-limits watchdog-triggered bundles: after
	// one fires, further automatic captures are suppressed for this
	// long (0 = DefaultBundleMinInterval). On-demand captures are
	// never rate-limited.
	BundleMinInterval time.Duration
	// BundleKeep caps how many bundles Dir retains; the oldest are
	// deleted past it (0 = DefaultBundleKeep).
	BundleKeep int
	// Budgets are the watchdog thresholds.
	Budgets Budgets
}

// Bundle retention defaults.
const (
	DefaultBundleMinInterval = time.Minute
	DefaultBundleKeep        = 8
)

// Recorder is the node's black box: the event journal, the health
// watchdog, and the diagnostic bundler behind one handle. Create it
// with New, hand it to the service (resd.ObsConfig.Flight — the
// service attaches its probes and journals through it), and mount
// Handler on the observability mux.
type Recorder struct {
	cfg     Config
	journal *Journal

	state   atomic.Int32
	warnMu  sync.Mutex
	warnMsg string

	srcMu sync.Mutex
	src   Sources
	quit  chan struct{}
	done  chan struct{}

	// cfgInfo is the effective-config blob bundles embed (SetConfigInfo).
	cfgInfo atomic.Value // any

	bundleMu    sync.Mutex
	bundleSeq   uint64
	lastAuto    time.Time
	written     atomic.Uint64
	rateLimited atomic.Uint64
	failed      atomic.Uint64
}

// New builds the recorder, creates Config.Dir when bundling is
// enabled, and registers the flight metric families.
func New(cfg Config) (*Recorder, error) {
	cfg.Budgets = cfg.Budgets.normalize()
	if cfg.BundleMinInterval == 0 {
		cfg.BundleMinInterval = DefaultBundleMinInterval
	}
	if cfg.BundleKeep <= 0 {
		cfg.BundleKeep = DefaultBundleKeep
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
	}
	r := &Recorder{
		cfg:     cfg,
		journal: NewJournal(cfg.JournalSize, cfg.Registry),
	}
	if reg := cfg.Registry; reg != nil {
		reg.GaugeFunc("resd_health_state",
			"Watchdog node health: 0 healthy, 1 degraded, 2 stalled.",
			func() float64 { return float64(r.state.Load()) })
		reg.CounterFunc("flight_bundles_total",
			"Diagnostic bundle captures, by result.",
			r.written.Load, obs.L("result", "written"))
		reg.CounterFunc("flight_bundles_total",
			"Diagnostic bundle captures, by result.",
			r.rateLimited.Load, obs.L("result", "ratelimited"))
		reg.CounterFunc("flight_bundles_total",
			"Diagnostic bundle captures, by result.",
			r.failed.Load, obs.L("result", "failed"))
	}
	return r, nil
}

// Journal returns the recorder's event journal (never nil).
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal
}

// State returns the watchdog's current health judgment.
func (r *Recorder) State() Health {
	if r == nil {
		return Healthy
	}
	return Health(r.state.Load())
}

// Warning returns the human-readable reason the node is not healthy,
// "" when it is — the string /healthz's warn path serves.
func (r *Recorder) Warning() string {
	if r == nil {
		return ""
	}
	r.warnMu.Lock()
	defer r.warnMu.Unlock()
	return r.warnMsg
}

// SetConfigInfo attaches the effective service configuration so
// bundles can embed it (config.json). Any JSON-marshalable value.
func (r *Recorder) SetConfigInfo(v any) {
	if r != nil {
		r.cfgInfo.Store(v)
	}
}

// Attach arms the watchdog with the service's probes and starts the
// monitor goroutine. One service per recorder: a second Attach
// replaces the first (stopping its monitor).
func (r *Recorder) Attach(src Sources) {
	if r == nil {
		return
	}
	r.Detach()
	r.srcMu.Lock()
	r.src = src
	r.quit = make(chan struct{})
	r.done = make(chan struct{})
	quit, done := r.quit, r.done
	r.srcMu.Unlock()
	go r.monitor(src, quit, done)
}

// Detach stops the monitor and resets the health state: with no
// service to observe there is nothing to judge.
func (r *Recorder) Detach() {
	if r == nil {
		return
	}
	r.srcMu.Lock()
	quit, done := r.quit, r.done
	r.quit, r.done = nil, nil
	r.src = Sources{}
	r.srcMu.Unlock()
	if quit != nil {
		close(quit)
		<-done
	}
	r.setState(Healthy, "")
}

func (r *Recorder) setState(h Health, why string) (changed bool) {
	old := Health(r.state.Swap(int32(h)))
	r.warnMu.Lock()
	r.warnMsg = why
	r.warnMu.Unlock()
	return old != h
}

// monitor is the watchdog loop: every CheckEvery it probes the shard
// heartbeats and the journal's frame-error counters, judges the node
// against the budgets, journals transitions, and captures a bundle
// when the state worsens.
func (r *Recorder) monitor(src Sources, quit <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	b := r.cfg.Budgets
	tick := time.NewTicker(b.CheckEvery)
	defer tick.Stop()

	// Per-shard accumulation of how long the queue has been >= 3/4
	// full, and the frame-error baseline for the burst rule.
	queueHot := map[int]time.Duration{}
	frameBase := r.journal.SubsysCount("reswire", Warn) + r.journal.SubsysCount("reswire", Error)

	for {
		select {
		case <-quit:
			return
		case <-tick.C:
		}
		now := time.Now()
		worst := Healthy
		var reasons []string
		note := func(h Health, format string, args ...any) {
			if h > worst {
				worst = h
			}
			reasons = append(reasons, fmt.Sprintf(format, args...))
		}

		if src.Shards != nil {
			for _, p := range src.Shards() {
				if !p.BusySince.IsZero() {
					if d := now.Sub(p.BusySince); d > b.StallAfter && b.StallAfter > 0 {
						note(Stalled, "shard %d loop stuck inside one batch turn for %v", p.Shard, d.Round(time.Millisecond))
					}
				} else if p.QueueLen > 0 && !p.LastTurn.IsZero() && b.StallAfter > 0 {
					if d := now.Sub(p.LastTurn); d > b.StallAfter {
						note(Stalled, "shard %d has %d queued requests and no turn for %v", p.Shard, p.QueueLen, d.Round(time.Millisecond))
					}
				}
				if b.QueueFullFor > 0 && p.QueueCap > 0 && p.QueueLen*4 >= p.QueueCap*3 {
					queueHot[p.Shard] += b.CheckEvery
					if queueHot[p.Shard] >= b.QueueFullFor {
						note(Degraded, "shard %d queue at %d/%d for %v", p.Shard, p.QueueLen, p.QueueCap, queueHot[p.Shard])
					}
				} else {
					queueHot[p.Shard] = 0
				}
				if b.FsyncP99 > 0 && p.FsyncP99 > b.FsyncP99 {
					note(Degraded, "shard %d wal fsync p99 %v over budget %v", p.Shard, p.FsyncP99.Round(time.Millisecond), b.FsyncP99)
				}
			}
		}
		if b.FrameErrorBurst > 0 {
			cur := r.journal.SubsysCount("reswire", Warn) + r.journal.SubsysCount("reswire", Error)
			if burst := cur - frameBase; burst > uint64(b.FrameErrorBurst) {
				note(Degraded, "%d wire frame errors inside one %v window", burst, b.CheckEvery)
			}
			frameBase = cur
		}

		old := r.State()
		why := strings.Join(reasons, "; ")
		if r.setState(worst, why) {
			sev := Info
			if worst > Healthy {
				sev = Warn
			}
			msg := "health state changed"
			if worst == Healthy {
				msg = "health recovered"
			}
			r.journal.Record(sev, "flight", -1, msg,
				KV{"from", old.String()}, KV{"to", worst.String()}, KV{"why", why})
			if worst > old && worst > Healthy {
				r.autoCapture("watchdog:" + worst.String())
			}
		}
	}
}
