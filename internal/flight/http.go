package flight

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// statusView is the JSON /debug/flight serves: the node's health
// judgment, the journal tail, and the bundle inventory.
type statusView struct {
	State   Health            `json:"state"`
	Warning string            `json:"warning,omitempty"`
	Counts  map[string]uint64 `json:"counts"`
	Events  []Event           `json:"events"`
	Bundles []string          `json:"bundles,omitempty"`
	Latest  string            `json:"latest,omitempty"`
}

// Handler serves the flight surface:
//
//	GET  /debug/flight                      health + journal tail (+?n=)
//	POST /debug/flight/capture?reason=...   on-demand bundle; {"bundle": name}
//	GET  /debug/flight/bundle/<name>        bundle file list (JSON)
//	GET  /debug/flight/bundle/<name>/<file> one bundle file
//
// Mount it at /debug/flight and /debug/flight/ on the observability
// mux (resdsrv does this when -flightdir or -obs is set).
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/flight", r.serveStatus)
	mux.HandleFunc("/debug/flight/capture", r.serveCapture)
	mux.HandleFunc("/debug/flight/bundle/", r.serveBundle)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (r *Recorder) serveStatus(w http.ResponseWriter, req *http.Request) {
	n := 128
	if q := req.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			n = v
		}
	}
	view := statusView{
		State:   r.State(),
		Warning: r.Warning(),
		Counts: map[string]uint64{
			Info.String():  r.journal.Count(Info),
			Warn.String():  r.journal.Count(Warn),
			Error.String(): r.journal.Count(Error),
		},
		Events:  r.journal.Tail(n),
		Bundles: r.Bundles(),
	}
	view.Latest = ""
	if len(view.Bundles) > 0 {
		view.Latest = view.Bundles[len(view.Bundles)-1]
	}
	writeJSON(w, view)
}

func (r *Recorder) serveCapture(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	reason := req.URL.Query().Get("reason")
	if reason == "" {
		reason = "on-demand"
	}
	name, err := r.Capture(reason)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"bundle": name})
}

// validBundlePart accepts exactly the names writeBundle mints and the
// flat file names it writes — anything with a path separator, a
// leading dot, or an empty segment is refused before touching the
// filesystem.
func validBundlePart(s string) bool {
	if s == "" || strings.HasPrefix(s, ".") {
		return false
	}
	return !strings.ContainsAny(s, `/\`)
}

func (r *Recorder) serveBundle(w http.ResponseWriter, req *http.Request) {
	if r.cfg.Dir == "" {
		http.Error(w, "bundle capture disabled", http.StatusNotFound)
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/debug/flight/bundle/")
	name, file, _ := strings.Cut(rest, "/")
	if !strings.HasPrefix(name, bundlePrefix) || !validBundlePart(name) {
		http.Error(w, "no such bundle", http.StatusNotFound)
		return
	}
	if file == "" {
		entries, err := os.ReadDir(filepath.Join(r.cfg.Dir, name))
		if err != nil {
			http.Error(w, "no such bundle", http.StatusNotFound)
			return
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() {
				files = append(files, e.Name())
			}
		}
		writeJSON(w, map[string]any{"bundle": name, "files": files})
		return
	}
	if !validBundlePart(file) {
		http.Error(w, "no such file", http.StatusNotFound)
		return
	}
	data, err := os.ReadFile(filepath.Join(r.cfg.Dir, name, file))
	if err != nil {
		http.Error(w, "no such file", http.StatusNotFound)
		return
	}
	switch {
	case strings.HasSuffix(file, ".json"):
		w.Header().Set("Content-Type", "application/json")
	case strings.HasSuffix(file, ".txt") || strings.HasSuffix(file, ".prom"):
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Write(data)
}
