package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// Bundle file names, in the order manifest.json lists them. A bundle
// directory is written complete into a hidden temp dir and renamed
// into place, so a name that appears in Config.Dir is always whole.
const (
	bundleManifest   = "manifest.json"
	bundleJournal    = "journal.json"
	bundleGoroutines = "goroutines.txt"
	bundleHeap       = "heap.pprof"
	bundleMetrics    = "metrics.prom"
	bundleTraces     = "traces.json"
	bundleWAL        = "wal.json"
	bundleConfig     = "config.json"
)

const bundlePrefix = "flight-"

// manifest is the bundle's self-description (manifest.json).
type manifest struct {
	Name    string   `json:"name"`
	Reason  string   `json:"reason"`
	Wall    string   `json:"wall"`
	State   Health   `json:"state"`
	Warning string   `json:"warning,omitempty"`
	Go      string   `json:"go"`
	Files   []string `json:"files"`
}

// Capture writes an on-demand diagnostic bundle and returns its name
// (the directory under Config.Dir). Unlike watchdog-triggered
// captures it is never rate-limited — an operator asking for evidence
// gets it. Fails when bundling is disabled (no Dir).
func (r *Recorder) Capture(reason string) (string, error) {
	if r == nil || r.cfg.Dir == "" {
		return "", fmt.Errorf("flight: bundle capture disabled (no directory configured)")
	}
	return r.writeBundle(reason)
}

// autoCapture is the watchdog's trigger path: rate-limited so a
// flapping rule cannot fill the disk, and never fatal.
func (r *Recorder) autoCapture(reason string) {
	if r.cfg.Dir == "" {
		return
	}
	r.bundleMu.Lock()
	limited := !r.lastAuto.IsZero() && time.Since(r.lastAuto) < r.cfg.BundleMinInterval
	if !limited {
		r.lastAuto = time.Now()
	}
	r.bundleMu.Unlock()
	if limited {
		r.rateLimited.Add(1)
		r.journal.Record(Info, "flight", -1, "bundle capture rate-limited",
			KV{"reason", reason}, KV{"min_interval", r.cfg.BundleMinInterval.String()})
		return
	}
	if _, err := r.writeBundle(reason); err != nil {
		r.journal.Record(Error, "flight", -1, "bundle capture failed",
			KV{"reason", reason}, KV{"err", err.Error()})
	}
}

// writeBundle assembles one bundle: every section into a temp dir,
// one atomic rename, then retention pruning. Sections are best-effort
// — a section that cannot be gathered is skipped rather than sinking
// the whole capture (the manifest lists what made it).
func (r *Recorder) writeBundle(reason string) (string, error) {
	r.bundleMu.Lock()
	defer r.bundleMu.Unlock()
	r.bundleSeq++
	name := fmt.Sprintf("%s%d-%04d", bundlePrefix, time.Now().UnixMilli(), r.bundleSeq)
	tmp := filepath.Join(r.cfg.Dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		r.failed.Add(1)
		return "", fmt.Errorf("flight: bundle: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after the rename

	var files []string
	writeFile := func(fname string, data []byte, err error) {
		if err != nil {
			return
		}
		if werr := os.WriteFile(filepath.Join(tmp, fname), data, 0o644); werr == nil {
			files = append(files, fname)
		}
	}
	writeJSON := func(fname string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		writeFile(fname, append(data, '\n'), err)
	}

	writeJSON(bundleJournal, r.journal.Tail(0))
	if p := pprof.Lookup("goroutine"); p != nil {
		var b strings.Builder
		if err := p.WriteTo(&b, 2); err == nil {
			writeFile(bundleGoroutines, []byte(b.String()), nil)
		}
	}
	if p := pprof.Lookup("heap"); p != nil {
		var b strings.Builder
		if err := p.WriteTo(&b, 0); err == nil {
			writeFile(bundleHeap, []byte(b.String()), nil)
		}
	}
	if reg := r.cfg.Registry; reg != nil {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err == nil {
			writeFile(bundleMetrics, []byte(b.String()), nil)
		}
	}
	r.srcMu.Lock()
	src := r.src
	r.srcMu.Unlock()
	if src.Traces != nil {
		writeJSON(bundleTraces, src.Traces())
	}
	if src.WAL != nil {
		writeJSON(bundleWAL, src.WAL())
	}
	if v := r.cfgInfo.Load(); v != nil {
		writeJSON(bundleConfig, v)
	}
	m := manifest{
		Name:    name,
		Reason:  reason,
		Wall:    time.Now().UTC().Format(time.RFC3339Nano),
		State:   r.State(),
		Warning: r.Warning(),
		Go:      runtime.Version(),
		Files:   append(files, bundleManifest),
	}
	writeJSON(bundleManifest, m)

	final := filepath.Join(r.cfg.Dir, name)
	if err := os.Rename(tmp, final); err != nil {
		r.failed.Add(1)
		return "", fmt.Errorf("flight: bundle: %w", err)
	}
	r.written.Add(1)
	r.journal.Record(Info, "flight", -1, "diagnostic bundle written",
		KV{"bundle", name}, KV{"reason", reason})
	r.prune()
	return name, nil
}

// prune enforces BundleKeep: the oldest bundles (and any temp debris a
// crash left) are removed. Bundle names embed a millisecond stamp with
// a fixed digit count, so lexicographic order is age order. Runs under
// bundleMu.
func (r *Recorder) prune() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			os.RemoveAll(filepath.Join(r.cfg.Dir, e.Name()))
			continue
		}
		if strings.HasPrefix(e.Name(), bundlePrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for len(names) > r.cfg.BundleKeep {
		os.RemoveAll(filepath.Join(r.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// Bundles lists the completed bundle names in Config.Dir, oldest
// first. Empty when bundling is disabled.
func (r *Recorder) Bundles() []string {
	if r == nil || r.cfg.Dir == "" {
		return nil
	}
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), bundlePrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// LatestBundle returns the newest completed bundle's name, or "".
func (r *Recorder) LatestBundle() string {
	names := r.Bundles()
	if len(names) == 0 {
		return ""
	}
	return names[len(names)-1]
}
