package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestJournalRing: the ring keeps the newest `size` events, totals keep
// counting past the wrap, and Tail returns oldest-first.
func TestJournalRing(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		sev := Info
		if i%3 == 0 {
			sev = Warn
		}
		j.Record(sev, "resd", i, "event")
	}
	tail := j.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("tail not chronological: %+v", tail)
		}
	}
	if tail[len(tail)-1].Seq != 10 {
		t.Errorf("newest seq = %d, want 10", tail[len(tail)-1].Seq)
	}
	if got := j.Count(Info) + j.Count(Warn); got != 10 {
		t.Errorf("totals survive the wrap: %d, want 10", got)
	}
	if got := j.SubsysCount("resd", Warn); got != 4 {
		t.Errorf("SubsysCount(resd, warn) = %d, want 4", got)
	}
	if got := j.Tail(2); len(got) != 2 || got[1].Seq != 10 {
		t.Errorf("Tail(2) = %+v, want the 2 newest", got)
	}
}

// TestJournalNil: every method is a safe no-op on a nil journal — the
// contract that lets hook sites record unconditionally.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Record(Error, "wal", 0, "ignored")
	j.RecordEvent(Event{Sev: Warn})
	if j.Count(Error) != 0 || j.SubsysCount("wal", Error) != 0 || j.Tail(0) != nil {
		t.Error("nil journal not inert")
	}
}

// TestJournalMetrics: per-severity totals mirror into the registry.
func TestJournalMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	j := NewJournal(8, reg)
	j.Record(Info, "resd", 0, "a")
	j.Record(Error, "wal", 1, "b")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("flight_events_total", map[string]string{"severity": "error"}); !ok || v != 1 {
		t.Errorf("flight_events_total{severity=error} = %v, %v", v, ok)
	}
}

// TestSeverityJSON: events marshal with string severities so bundle
// dumps read without a decoder table.
func TestSeverityJSON(t *testing.T) {
	j := NewJournal(2, nil)
	j.Record(Warn, "rebal", -1, "backoff")
	raw, err := json.Marshal(j.Tail(0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"sev":"warn"`) {
		t.Errorf("severity not a string: %s", raw)
	}
}

// TestQueueDispatch: accepted callbacks run in order on the consumer;
// a full queue drops (counted) without blocking the caller.
func TestQueueDispatch(t *testing.T) {
	q := NewQueue(2)
	block := make(chan struct{})
	var mu sync.Mutex
	var ran []int
	// Wedge the consumer so subsequent dispatches fill the buffer.
	q.Dispatch(func() { <-block })
	for i := 0; i < 4; i++ {
		i := i
		q.Dispatch(func() { mu.Lock(); ran = append(ran, i); mu.Unlock() })
	}
	if d := q.Dropped(); d == 0 {
		t.Error("overfull queue dropped nothing")
	}
	close(block)
	q.Close()
	select {
	case <-q.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never drained")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) == 0 || len(ran) > 2 {
		t.Errorf("ran %v callbacks, want 1..2 (depth 2)", ran)
	}
	for i := 1; i < len(ran); i++ {
		if ran[i] < ran[i-1] {
			t.Errorf("callbacks out of order: %v", ran)
		}
	}
}

// TestQueueCloseNonBlocking: Close returns even while the consumer is
// wedged inside a callback — a hostile SlowLog must not wedge shutdown.
func TestQueueCloseNonBlocking(t *testing.T) {
	q := NewQueue(1)
	block := make(chan struct{})
	defer close(block)
	q.Dispatch(func() { <-block })
	done := make(chan struct{})
	go func() { q.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a wedged consumer")
	}
	if q.Dispatch(func() {}) {
		t.Error("Dispatch accepted after Close")
	}
	var nq *Queue
	nq.Dispatch(func() {}) // nil-safe
	nq.Close()
}

// probeSource is a controllable Sources.Shards for watchdog tests.
type probeSource struct {
	mu    sync.Mutex
	probe ShardProbe
}

func (p *probeSource) set(sp ShardProbe) { p.mu.Lock(); p.probe = sp; p.mu.Unlock() }
func (p *probeSource) get() []ShardProbe {
	p.mu.Lock()
	defer p.mu.Unlock()
	return []ShardProbe{p.probe}
}

func waitState(t *testing.T, r *Recorder, want Health) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("state = %v, want %v (warning %q)", r.State(), want, r.Warning())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogTransitions drives healthy → stalled → healthy through a
// synthetic probe and checks the journal records both transitions and a
// bundle lands in the directory on the way down.
func TestWatchdogTransitions(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir, Budgets: Budgets{
		CheckEvery: 2 * time.Millisecond, StallAfter: 10 * time.Millisecond,
		QueueFullFor: -1, FsyncP99: -1, FrameErrorBurst: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	src := &probeSource{}
	src.set(ShardProbe{Shard: 0, LastTurn: time.Now()})
	r.Attach(Sources{Shards: src.get})
	defer r.Detach()

	waitOK := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(waitOK) {
		if r.State() != Healthy {
			t.Fatalf("healthy probe judged %v: %s", r.State(), r.Warning())
		}
		time.Sleep(2 * time.Millisecond)
	}

	src.set(ShardProbe{Shard: 0, BusySince: time.Now().Add(-time.Second)})
	waitState(t, r, Stalled)
	if w := r.Warning(); !strings.Contains(w, "shard 0") {
		t.Errorf("warning %q does not name the shard", w)
	}
	if got := r.Bundles(); len(got) != 1 {
		t.Errorf("stall captured %d bundles, want 1", len(got))
	}

	src.set(ShardProbe{Shard: 0, LastTurn: time.Now()})
	waitState(t, r, Healthy)
	if r.Warning() != "" {
		t.Errorf("recovered but warning = %q", r.Warning())
	}

	var sawStall, sawRecover bool
	for _, ev := range r.Journal().Tail(0) {
		if ev.Subsys != "flight" {
			continue
		}
		for _, kv := range ev.KV {
			if kv.K == "to" && kv.V == "stalled" {
				sawStall = true
			}
			if kv.K == "to" && kv.V == "healthy" {
				sawRecover = true
			}
		}
	}
	if !sawStall || !sawRecover {
		t.Errorf("journal transitions: stall=%v recover=%v, want both", sawStall, sawRecover)
	}
}

// TestWatchdogQueueRunaway: a queue pinned at capacity degrades the
// node after QueueFullFor, and draining it recovers.
func TestWatchdogQueueRunaway(t *testing.T) {
	r, err := New(Config{Budgets: Budgets{
		CheckEvery: 2 * time.Millisecond, QueueFullFor: 10 * time.Millisecond,
		StallAfter: -1, FsyncP99: -1, FrameErrorBurst: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	src := &probeSource{}
	src.set(ShardProbe{Shard: 0, LastTurn: time.Now(), QueueLen: 8, QueueCap: 8})
	r.Attach(Sources{Shards: src.get})
	defer r.Detach()
	waitState(t, r, Degraded)
	src.set(ShardProbe{Shard: 0, LastTurn: time.Now(), QueueLen: 0, QueueCap: 8})
	waitState(t, r, Healthy)
}

// TestAutoCaptureRateLimit: a flapping watchdog trigger writes one
// bundle per BundleMinInterval, not one per flap — the disk is safe.
func TestAutoCaptureRateLimit(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir, BundleMinInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.autoCapture("flap")
	}
	if got := r.Bundles(); len(got) != 1 {
		t.Fatalf("20 flaps wrote %d bundles, want 1", len(got))
	}
	if r.rateLimited.Load() != 19 {
		t.Errorf("rateLimited = %d, want 19", r.rateLimited.Load())
	}
	// On-demand capture is never rate-limited.
	if _, err := r.Capture("operator"); err != nil {
		t.Fatalf("on-demand capture rate-limited: %v", err)
	}
	if got := r.Bundles(); len(got) != 2 {
		t.Errorf("bundles = %d, want 2", len(got))
	}
}

// TestBundleRetention: Dir keeps the newest BundleKeep bundles.
func TestBundleRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir, BundleKeep: 3})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 5; i++ {
		n, err := r.Capture("fill")
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	got := r.Bundles()
	if len(got) != 3 {
		t.Fatalf("retained %d bundles, want 3", len(got))
	}
	for i, n := range got {
		if want := names[i+2]; n != want {
			t.Errorf("retained[%d] = %s, want %s (newest kept)", i, n, want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, names[0])); !os.IsNotExist(err) {
		t.Errorf("oldest bundle still on disk: %v", err)
	}
}

// TestBundleContents: a capture holds a manifest naming its files, the
// journal dump, and a parseable metrics snapshot.
func TestBundleContents(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r, err := New(Config{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r.SetConfigInfo(map[string]int{"shards": 4})
	r.Journal().Record(Warn, "wal", 2, "torn tail")
	name, err := r.Capture("test")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name, bundleManifest))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != name || m.Reason != "test" {
		t.Errorf("manifest = %+v", m)
	}
	for _, want := range []string{bundleJournal, bundleGoroutines, bundleMetrics, bundleConfig, bundleManifest} {
		found := false
		for _, f := range m.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest lacks %s: %v", want, m.Files)
		}
	}
	raw, err = os.ReadFile(filepath.Join(dir, name, bundleJournal))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Msg != "torn tail" {
		t.Errorf("journal dump = %+v", events)
	}
	raw, err = os.ReadFile(filepath.Join(dir, name, bundleMetrics))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseExposition(raw); err != nil {
		t.Errorf("metrics snapshot malformed: %v", err)
	}
}

// TestHandler: the HTTP surface serves status, captures on POST only,
// lists and fetches bundle files, and refuses path traversal.
func TestHandler(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r.Journal().Record(Info, "resd", 0, "hello")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		State  string  `json:"state"`
		Events []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != "healthy" || len(status.Events) != 1 {
		t.Errorf("status = %+v", status)
	}

	if resp, _ = srv.Client().Get(srv.URL + "/debug/flight/capture"); resp.StatusCode != 405 {
		t.Errorf("GET capture = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = srv.Client().Post(srv.URL+"/debug/flight/capture?reason=t", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cap struct {
		Bundle string `json:"bundle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cap); err != nil || cap.Bundle == "" {
		t.Fatalf("capture reply: %v %+v", err, cap)
	}
	resp.Body.Close()

	resp, err = srv.Client().Get(srv.URL + "/debug/flight/bundle/" + cap.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Files []string `json:"files"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil || len(listing.Files) == 0 {
		t.Fatalf("bundle listing: %v %+v", err, listing)
	}
	resp.Body.Close()
	resp, err = srv.Client().Get(srv.URL + "/debug/flight/bundle/" + cap.Bundle + "/" + bundleManifest)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("manifest fetch: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	for _, path := range []string{
		"/debug/flight/bundle/../secret",
		"/debug/flight/bundle/" + cap.Bundle + "/..%2f..%2fmanifest.json",
		"/debug/flight/bundle/.tmp-x",
		"/debug/flight/bundle/notflight",
		"/debug/flight/bundle/" + cap.Bundle + "/.hidden",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}
