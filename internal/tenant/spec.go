package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Spec is the declarative quota configuration — what cmd/resdsrv loads
// from its -quotas file. The zero Spec is valid: hard mode, no declared
// groups or tenants, every tenant discovered at runtime owning a full
// share of the default group.
type Spec struct {
	// Mode is "hard" or "soft" ("" = hard).
	Mode string `json:"mode,omitempty"`
	// DefaultShare is the share tenants not listed below receive of the
	// default group (0 = 1.0, i.e. runtime-discovered tenants are bounded
	// only by their group).
	DefaultShare float64 `json:"default_share,omitempty"`
	// Groups declare shares of the global capacity. A "default" group is
	// always present (share 1 unless declared otherwise).
	Groups []GroupSpec `json:"groups,omitempty"`
	// Tenants declare shares of their group's budget.
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// GroupSpec is one group's share of the global capacity.
type GroupSpec struct {
	Name  string  `json:"name"`
	Share float64 `json:"share"`
}

// TenantSpec is one tenant's share of its group ("" = the default group).
type TenantSpec struct {
	Name  string  `json:"name"`
	Group string  `json:"group,omitempty"`
	Share float64 `json:"share"`
}

// normalize validates the spec, fills defaults, and resolves the mode.
func (s Spec) normalize() (Spec, Mode, error) {
	mode := Hard
	if s.Mode != "" {
		var err error
		if mode, err = ParseMode(s.Mode); err != nil {
			return s, 0, err
		}
	}
	if s.DefaultShare == 0 {
		s.DefaultShare = 1
	}
	if err := validShare("default_share", s.DefaultShare); err != nil {
		return s, 0, err
	}
	seenG := map[string]bool{}
	for _, g := range s.Groups {
		if err := validName("group", g.Name); err != nil {
			return s, 0, err
		}
		if seenG[g.Name] {
			return s, 0, fmt.Errorf("%w: group %q declared twice", ErrConfig, g.Name)
		}
		seenG[g.Name] = true
		if err := validShare("group "+g.Name, g.Share); err != nil {
			return s, 0, err
		}
	}
	seenT := map[string]bool{}
	for _, t := range s.Tenants {
		if err := validName("tenant", t.Name); err != nil {
			return s, 0, err
		}
		if seenT[t.Name] {
			return s, 0, fmt.Errorf("%w: tenant %q declared twice", ErrConfig, t.Name)
		}
		seenT[t.Name] = true
		if t.Group != "" && t.Group != DefaultGroup && !seenG[t.Group] {
			return s, 0, fmt.Errorf("%w: tenant %q names undeclared group %q", ErrConfig, t.Name, t.Group)
		}
		if err := validShare("tenant "+t.Name, t.Share); err != nil {
			return s, 0, err
		}
	}
	return s, mode, nil
}

func validName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("%w: %s with empty name", ErrConfig, kind)
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("%w: %s name %q is %d bytes long (max %d)", ErrConfig, kind, name[:16]+"…", len(name), MaxNameLen)
	}
	return nil
}

func validShare(what string, share float64) error {
	if share <= 0 || share > 1 || math.IsNaN(share) {
		return fmt.Errorf("%w: %s share %v outside (0,1]", ErrConfig, what, share)
	}
	return nil
}

// ParseSpec decodes a JSON quota spec, rejecting unknown fields so a
// typo'd key fails loudly instead of silently granting full shares.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if _, _, err := s.normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a quota spec file (the -quotas flag).
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
