// Package tenant is the multi-tenant quota and fair-share subsystem that
// sits in front of shard admission in internal/resd: a ledger of
// per-tenant budgets denominated in area of the reservable α-prefix, with
// lock-free accounting on the admission path and two enforcement modes.
//
// # Why budgets, and what they are fractions of
//
// The paper's α rule bounds how much of the machine prefix reservations
// may occupy — every shard keeps ⌊α·m⌋ processors free of reservations at
// all times — but it is a single global knob: one aggressive caller can
// fill the entire reservable prefix and starve everyone else while
// staying perfectly α-legal. Production reservation schedulers therefore
// partition the reservable capacity per tenant (Volcano's queue/quota
// model, per-task reservation budgets in federated real-time scheduling),
// and this package does the same for resd.
//
// The unit of account is area: processors × ticks, exactly what a
// reservation of q processors for d ticks consumes. The global capacity
// is the area of the α-prefix over the service's accounting horizon,
//
//	capacity = shards × (m − ⌊α·m⌋) × horizon,
//
// and every budget is a fraction of it. The per-tenant budget composes
// with — never replaces — the paper's α rule: the shard still finds slots
// for q+⌊α·m⌋ processors, so the job-stream guarantee of §4.2 is intact;
// quotas only decide which tenant gets to spend the prefix the α rule
// left reservable.
//
// # The hierarchy
//
// Budgets form three levels: global capacity → group → tenant. A group
// owns a share of the capacity, a tenant a share of its group, and an
// admission must fit under both its tenant's and its group's budget, so a
// group of many individually-under-budget tenants is still collectively
// bounded. Tenants not named in the Spec are created on first sight under
// the default group with the spec's DefaultShare — in particular the
// DefaultTenant, where every unattributed request (tenantless API calls,
// version-1 wire frames) is accounted.
//
// # Enforcement modes
//
//   - Hard: Acquire fails with ErrQuota when the admission would push the
//     tenant or its group past its budget. Because the charge is a CAS
//     that checks before it adds, used ≤ budget holds at every instant no
//     matter how many shard event loops race — the conservation property
//     the stress tests pin under -race.
//   - Soft: nothing is rejected; budgets instead weight fair-share
//     ordering. When the prefix is contended — several Reserve requests
//     ride one shard group-commit batch — the shard serves them lowest
//     usage-to-budget ratio first (the larger of the tenant's and its
//     group's ratio), DRF-style, so a tenant far under its share overtakes
//     one far over it, and earlier (cheaper) start times flow to the
//     underserved tenant.
//
// Accounting is lock-free on the admission path: tenant lookup is a
// sync.Map read and every counter is an atomic, mirroring how the shards
// publish their load summaries. Registry construction and SetShare (the
// wire QuotaSet op) are the only synchronised operations.
package tenant
