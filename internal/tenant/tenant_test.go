package tenant

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func mustNew(t *testing.T, capacity int64, spec Spec) *Registry {
	t.Helper()
	r, err := New(capacity, spec)
	if err != nil {
		t.Fatalf("New(%d, %+v): %v", capacity, spec, err)
	}
	return r
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Mode: "strict"},
		{DefaultShare: 1.5},
		{DefaultShare: -0.1},
		{Groups: []GroupSpec{{Name: "", Share: 0.5}}},
		{Groups: []GroupSpec{{Name: "g", Share: 0}}},
		{Groups: []GroupSpec{{Name: "g", Share: 2}}},
		{Groups: []GroupSpec{{Name: "g", Share: 0.5}, {Name: "g", Share: 0.5}}},
		{Tenants: []TenantSpec{{Name: "", Share: 0.5}}},
		{Tenants: []TenantSpec{{Name: "t", Share: math.NaN()}}},
		{Tenants: []TenantSpec{{Name: "t", Share: 0.5}, {Name: "t", Share: 0.1}}},
		{Tenants: []TenantSpec{{Name: "t", Group: "nope", Share: 0.5}}},
		{Tenants: []TenantSpec{{Name: strings.Repeat("x", MaxNameLen+1), Share: 0.5}}},
	}
	for _, spec := range bad {
		if _, err := New(1000, spec); !errors.Is(err, ErrConfig) {
			t.Errorf("New(%+v) err = %v, want ErrConfig", spec, err)
		}
	}
	if _, err := New(0, Spec{}); !errors.Is(err, ErrConfig) {
		t.Errorf("capacity 0 accepted: %v", err)
	}
	// "default" may be referenced without being declared.
	if _, err := New(1000, Spec{Tenants: []TenantSpec{{Name: "t", Group: DefaultGroup, Share: 0.5}}}); err != nil {
		t.Errorf("tenant in implicit default group rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
		"mode": "soft",
		"default_share": 0.1,
		"groups": [{"name": "prod", "share": 0.75}],
		"tenants": [
			{"name": "etl", "group": "prod", "share": 0.5},
			{"name": "adhoc", "share": 0.25}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != "soft" || spec.DefaultShare != 0.1 || len(spec.Groups) != 1 || len(spec.Tenants) != 2 {
		t.Fatalf("parsed spec %+v", spec)
	}
	// Unknown fields must fail loudly, not silently grant full shares.
	if _, err := ParseSpec(strings.NewReader(`{"mode": "hard", "tennants": []}`)); !errors.Is(err, ErrConfig) {
		t.Fatalf("typo'd key err = %v, want ErrConfig", err)
	}
	if _, err := ParseSpec(strings.NewReader(`{"mode": "gentle"}`)); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad mode err = %v, want ErrConfig", err)
	}
}

func TestBudgetHierarchyResolution(t *testing.T) {
	r := mustNew(t, 1000, Spec{
		Groups: []GroupSpec{{Name: "prod", Share: 0.5}},
		Tenants: []TenantSpec{
			{Name: "etl", Group: "prod", Share: 0.5},
			{Name: "web", Group: "prod", Share: 0.25},
			{Name: "lab", Share: 0.1}, // default group (share 1)
		},
		DefaultShare: 0.25,
	})
	want := map[string]int64{"etl": 250, "web": 125, "lab": 100}
	for name, budget := range want {
		if u := r.Usage(name); u.Budget != budget {
			t.Errorf("%s budget = %d, want %d", name, u.Budget, budget)
		}
	}
	// Runtime-discovered tenant lands in the default group at DefaultShare.
	u := r.Usage("newcomer")
	if u.Group != DefaultGroup || u.Budget != 250 {
		t.Errorf("discovered tenant = %+v, want default group budget 250", u)
	}
	// The tenantless name maps to DefaultTenant.
	if got := r.Usage(""); got.Tenant != DefaultTenant {
		t.Errorf("Usage(\"\") tenant = %q, want %q", got.Tenant, DefaultTenant)
	}
}

func TestHardModeEnforcesTenantBudget(t *testing.T) {
	r := mustNew(t, 1000, Spec{Tenants: []TenantSpec{{Name: "t", Share: 0.1}}})
	if err := r.Acquire("t", 100); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire("t", 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-budget acquire err = %v, want ErrQuota", err)
	}
	if u := r.Usage("t"); u.Used != 100 || u.Rejected != 1 {
		t.Fatalf("usage after rejection = %+v, want used 100 rejected 1", u)
	}
	r.Admit("t")
	r.Release("t", 100)
	if u := r.Usage("t"); u.Used != 0 || u.Inflight != 0 || u.Admitted != 1 || u.Cancelled != 1 {
		t.Fatalf("usage after release = %+v", u)
	}
	// Released area is acquirable again.
	if err := r.Acquire("t", 100); err != nil {
		t.Fatal(err)
	}
}

func TestHardModeEnforcesGroupBudget(t *testing.T) {
	// Two tenants each entitled to 80% of a group holding 100: the group
	// cap binds before the second tenant's own budget does.
	r := mustNew(t, 1000, Spec{
		Groups: []GroupSpec{{Name: "g", Share: 0.1}},
		Tenants: []TenantSpec{
			{Name: "a", Group: "g", Share: 0.8},
			{Name: "b", Group: "g", Share: 0.8},
		},
	})
	if err := r.Acquire("a", 70); err != nil {
		t.Fatal(err)
	}
	err := r.Acquire("b", 50)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("group-exceeding acquire err = %v, want ErrQuota", err)
	}
	// The failed acquire must not leak tenant-level usage, and the
	// rejection is booked on both the tenant and the binding group —
	// that's how an operator finds which budget is the bottleneck.
	if u := r.Usage("b"); u.Used != 0 || u.Rejected != 1 {
		t.Fatalf("tenant b after group rejection = %+v, want used 0 rejected 1", u)
	}
	gs := r.Groups()
	var g Usage
	for _, gu := range gs {
		if gu.Tenant == "g" {
			g = gu
		}
	}
	if g.Rejected != 1 {
		t.Fatalf("group g rejected = %d, want 1 (groups %+v)", g.Rejected, gs)
	}
	if err := r.Acquire("b", 30); err != nil {
		t.Fatalf("within-group acquire: %v", err)
	}
	// A tenant-level rejection does not blame the group.
	r2 := mustNew(t, 1000, Spec{Tenants: []TenantSpec{{Name: "t", Share: 0.01}}})
	if err := r2.Acquire("t", 500); !errors.Is(err, ErrQuota) {
		t.Fatal(err)
	}
	if g := r2.Groups()[0]; g.Rejected != 0 {
		t.Fatalf("default group rejected = %d after tenant-level rejection, want 0", g.Rejected)
	}
}

func TestSoftModeNeverRejects(t *testing.T) {
	r := mustNew(t, 100, Spec{Mode: "soft", Tenants: []TenantSpec{{Name: "t", Share: 0.01}}})
	if err := r.Acquire("t", 1000); err != nil {
		t.Fatalf("soft acquire rejected: %v", err)
	}
	if u := r.Usage("t"); u.Used != 1000 {
		t.Fatalf("soft usage = %d, want 1000", u.Used)
	}
	if ratio := r.Ratio("t"); ratio < 100 {
		t.Fatalf("ratio = %v, want >= 100 (1000 used of budget 1... dominated by group 1000/100)", ratio)
	}
}

func TestRatioOrdersByPressure(t *testing.T) {
	r := mustNew(t, 1000, Spec{
		Mode: "soft",
		Tenants: []TenantSpec{
			{Name: "light", Share: 0.5},
			{Name: "heavy", Share: 0.5},
		},
	})
	if err := r.Acquire("heavy", 400); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire("light", 50); err != nil {
		t.Fatal(err)
	}
	if rl, rh := r.Ratio("light"), r.Ratio("heavy"); rl >= rh {
		t.Fatalf("Ratio(light)=%v >= Ratio(heavy)=%v", rl, rh)
	}
	// Group pressure dominates when it exceeds the tenant's own: load the
	// shared default group far past "spare"'s individual share.
	if got := r.Ratio("spare"); got < 0.45 || got > 0.46 {
		t.Fatalf("idle tenant's group-dominated ratio = %v, want 450/1000", got)
	}
}

func TestSetShareRebudgets(t *testing.T) {
	r := mustNew(t, 1000, Spec{Tenants: []TenantSpec{{Name: "t", Share: 0.1}}})
	if err := r.Acquire("t", 100); err != nil {
		t.Fatal(err)
	}
	if err := r.SetShare("t", 0.05); err != nil {
		t.Fatal(err)
	}
	// Nothing is evicted, but new admissions fail until usage drains.
	if u := r.Usage("t"); u.Budget != 50 || u.Used != 100 {
		t.Fatalf("after shrink: %+v", u)
	}
	if err := r.Acquire("t", 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("acquire under shrunk budget err = %v, want ErrQuota", err)
	}
	if err := r.SetShare("t", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Acquire("t", 300); err != nil {
		t.Fatalf("acquire under grown budget: %v", err)
	}
	for _, share := range []float64{0, -1, 1.5, math.NaN()} {
		if err := r.SetShare("t", share); !errors.Is(err, ErrConfig) {
			t.Errorf("SetShare(%v) err = %v, want ErrConfig", share, err)
		}
	}
	if err := r.SetShare(strings.Repeat("n", MaxNameLen+1), 0.5); !errors.Is(err, ErrConfig) {
		t.Errorf("oversized name err = %v, want ErrConfig", err)
	}
}

func TestAccountCapAliasesToDefault(t *testing.T) {
	r := mustNew(t, 1000, Spec{DefaultShare: 0.5})
	// Materialise accounts up to the cap (the default tenant included).
	r.Usage("")
	for i := 0; i < MaxAccounts-1; i++ {
		r.Usage(fmt.Sprintf("n%d", i))
	}
	if u := r.Usage("one-more"); u.Tenant != DefaultTenant {
		t.Fatalf("past the cap, new name materialised account %q, want alias to %q", u.Tenant, DefaultTenant)
	}
	// Accounts created before the cap keep resolving to themselves, and
	// acquire/release on an aliased name stays balanced on the default
	// account (the alias is deterministic).
	if u := r.Usage("n5"); u.Tenant != "n5" {
		t.Fatalf("pre-cap account resolved to %q", u.Tenant)
	}
	if err := r.Acquire("stranger", 10); err != nil {
		t.Fatal(err)
	}
	if u := r.Usage(""); u.Used != 10 {
		t.Fatalf("aliased acquire landed on used=%d, want 10 on the default account", u.Used)
	}
	r.Release("stranger", 10)
	if u := r.Usage(""); u.Used != 0 {
		t.Fatalf("aliased release left used=%d", u.Used)
	}
}

func TestModeSwitch(t *testing.T) {
	r := mustNew(t, 100, Spec{Mode: "soft"})
	if err := r.Acquire("t", 500); err != nil {
		t.Fatal(err)
	}
	r.SetMode(Hard)
	if r.Mode() != Hard {
		t.Fatalf("mode = %v", r.Mode())
	}
	// Over-budget tenant is not evicted but cannot acquire more.
	if err := r.Acquire("t", 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("post-switch acquire err = %v, want ErrQuota", err)
	}
}

func TestLedgerViews(t *testing.T) {
	r := mustNew(t, 1000, Spec{
		Groups:  []GroupSpec{{Name: "prod", Share: 0.5}},
		Tenants: []TenantSpec{{Name: "b", Group: "prod", Share: 0.5}, {Name: "a", Share: 0.5}},
	})
	ts := r.Tenants()
	if len(ts) != 2 || ts[0].Tenant != "a" || ts[1].Tenant != "b" {
		t.Fatalf("Tenants() = %+v", ts)
	}
	gs := r.Groups()
	if len(gs) != 2 || gs[0].Tenant != DefaultGroup || gs[1].Tenant != "prod" {
		t.Fatalf("Groups() = %+v", gs)
	}
}

// TestConcurrentAcquireNeverExceedsBudget is the package-local half of the
// conservation property: many goroutines hammering Acquire/Release on
// shared tenants must never observe used > budget on any account, and the
// books must balance exactly once everything is released. Run under -race
// this also checks the atomics-only claim of the admission path.
func TestConcurrentAcquireNeverExceedsBudget(t *testing.T) {
	const (
		capacity   = 1 << 20
		goroutines = 8
		iters      = 2000
	)
	r := mustNew(t, capacity, Spec{
		Groups: []GroupSpec{{Name: "g", Share: 0.5}},
		Tenants: []TenantSpec{
			{Name: "a", Group: "g", Share: 0.5},
			{Name: "b", Group: "g", Share: 0.75},
			{Name: "c", Share: 0.25},
		},
	})
	tenants := []string{"a", "b", "c"}
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range tenants {
				if u := r.Usage(name); u.Used > u.Budget {
					t.Errorf("tenant %s used %d > budget %d", name, u.Used, u.Budget)
					return
				}
			}
			for _, g := range r.Groups() {
				if g.Used > g.Budget {
					t.Errorf("group %s used %d > budget %d", g.Tenant, g.Used, g.Budget)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := tenants[g%len(tenants)]
			area := int64(64 + g)
			held := 0
			for i := 0; i < iters; i++ {
				if held > 0 && i%3 == 0 {
					r.Release(name, area)
					held--
					continue
				}
				if err := r.Acquire(name, area); err == nil {
					r.Admit(name)
					held++
				} else if !errors.Is(err, ErrQuota) {
					t.Errorf("acquire: %v", err)
					return
				}
			}
			for ; held > 0; held-- {
				r.Release(name, area)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	monitor.Wait()
	for _, name := range tenants {
		if u := r.Usage(name); u.Used != 0 || u.Inflight != 0 {
			t.Errorf("tenant %s not drained: %+v", name, u)
		}
	}
	for _, g := range r.Groups() {
		if g.Used != 0 || g.Inflight != 0 {
			t.Errorf("group %s not drained: %+v", g.Tenant, g)
		}
	}
}
