package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Errors returned by the quota subsystem.
var (
	// ErrQuota reports a hard-mode admission rejected because it would
	// push a tenant (or its group) past its budgeted share of the
	// reservable α-prefix. It is a sentinel: errors.Is(err, ErrQuota)
	// works through every wrapping layer, including across the wire
	// (reswire maps it onto the REJECTED_QUOTA code).
	ErrQuota = errors.New("tenant: quota exceeded")
	// ErrConfig reports an invalid quota specification (bad share, bad
	// mode, duplicate or dangling names).
	ErrConfig = errors.New("tenant: invalid quota config")
)

// DefaultTenant is the tenant every unattributed request is accounted to:
// in-process callers of the tenantless Reserve/ReserveBy entry points and
// version-1 wire frames, which predate tenant ids, both land here.
const DefaultTenant = "default"

// DefaultGroup is the group tenants belong to when their spec names none,
// and the group runtime-discovered tenants are created under.
const DefaultGroup = "default"

// MaxNameLen bounds tenant and group names; the wire protocol carries
// names with a one-byte length.
const MaxNameLen = 255

// MaxAccounts bounds how many distinct tenant accounts a registry will
// materialise. Declared tenants always fit (a Spec is operator-written);
// the cap exists for runtime discovery, where every Reserve or QuotaGet
// frame may name a fresh tenant: without it, an unauthenticated client
// cycling random names could grow the server's memory without limit.
// Past the cap, unknown names alias to the default tenant's account —
// admissions stay correct (they are bounded by the default budget and
// balanced by the same alias on Cancel), only per-name attribution
// degrades.
const MaxAccounts = 1 << 16

// Mode selects how budgets are enforced.
type Mode uint8

const (
	// Hard rejects an admission that would exceed the tenant's (or its
	// group's) budget with ErrQuota. Usage can never exceed budget.
	Hard Mode = iota
	// Soft never rejects on quota: budgets instead weight fair-share
	// ordering. When the α-prefix is contended — several Reserves ride
	// one shard batch — competing requests are served lowest
	// usage-to-budget ratio first, DRF-style, so tenants far under their
	// share overtake tenants far over it.
	Soft
)

// String names the mode as the config file spells it.
func (m Mode) String() string {
	switch m {
	case Hard:
		return "hard"
	case Soft:
		return "soft"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode parses "hard" or "soft".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "hard":
		return Hard, nil
	case "soft":
		return Soft, nil
	default:
		return 0, fmt.Errorf("%w: mode %q (want hard or soft)", ErrConfig, s)
	}
}

// account is one node of the budget hierarchy: a tenant or a group. All
// fields the admission path touches are atomics, so shard event loops on
// different goroutines acquire and release concurrently without locks.
type account struct {
	name  string
	share uint64       // math.Float64bits of the share of the parent budget
	budg  atomic.Int64 // resolved area budget (share × parent budget)
	used  atomic.Int64 // admitted area currently held

	inflight  atomic.Int64 // currently held reservations
	admitted  atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64 // hard-mode quota rejections
}

func (a *account) shareVal() float64 { return math.Float64frombits(atomic.LoadUint64(&a.share)) }

// tryAcquire adds area to used unless that would exceed the budget. The
// CAS loop is the whole enforcement mechanism: because the add is
// conditional and atomic, used ≤ budget holds at every instant no matter
// how many shards race.
func (a *account) tryAcquire(area int64) bool {
	for {
		u := a.used.Load()
		if u+area > a.budg.Load() {
			return false
		}
		if a.used.CompareAndSwap(u, u+area) {
			return true
		}
	}
}

// ratio returns used/budget — the fair-share pressure soft mode sorts by.
func (a *account) ratio() float64 {
	b := a.budg.Load()
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(a.used.Load()) / float64(b)
}

// tenantAcct is a tenant account plus its group link.
type tenantAcct struct {
	account
	group *account
}

// Usage is a point-in-time view of one tenant's quota state, as QuotaGet
// reports it over the wire.
type Usage struct {
	// Tenant and Group name the account and its parent.
	Tenant, Group string
	// Share is the tenant's fraction of its group's budget.
	Share float64
	// Budget is the resolved area budget (processor·ticks).
	Budget int64
	// Used is the admitted area currently held.
	Used int64
	// Inflight is the number of currently held reservations.
	Inflight int64
	// Admitted, Cancelled and Rejected count operations since start
	// (Rejected counts hard-mode quota rejections only).
	Admitted, Cancelled, Rejected uint64
}

// Registry is the quota and fair-share ledger the admission service
// consults: per-tenant α-budget shares resolved against a global
// reservable-area capacity, with lock-free accounting on the admission
// path. Construct with New; all methods are safe for concurrent use.
//
// The budget hierarchy has three levels. The global capacity is the area
// of the reservable α-prefix the service exposes (shards × (m−⌊α·m⌋) ×
// accounting horizon). Each group owns a share of that capacity, and each
// tenant a share of its group. An admission must fit under both its
// tenant's and its group's budget, so a group of many small tenants is
// collectively bounded even when each tenant is individually under its
// own share.
type Registry struct {
	mode     atomic.Uint32
	capacity int64

	defaultShare float64

	// groups is fixed at construction (specs may not invent groups at
	// runtime); tenants grows lazily, so lookups on the admission path use
	// sync.Map's lock-free read fast path. nAccounts (guarded by mkMu)
	// enforces MaxAccounts.
	groups    map[string]*account
	tenants   sync.Map // string → *tenantAcct
	mkMu      sync.Mutex
	nAccounts int
}

// New builds a registry enforcing spec against the given global capacity:
// the reservable α-prefix area, in processor·ticks, that all budgets are
// fractions of. The service computes it as shards × (m − ⌊α·m⌋) ×
// horizon for its accounting horizon.
func New(capacity int64, spec Spec) (*Registry, error) {
	spec, mode, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: capacity %d, need >= 1", ErrConfig, capacity)
	}
	r := &Registry{capacity: capacity, defaultShare: spec.DefaultShare}
	r.mode.Store(uint32(mode))
	r.groups = make(map[string]*account)
	for _, g := range spec.Groups {
		acct := &account{name: g.Name}
		atomic.StoreUint64(&acct.share, math.Float64bits(g.Share))
		acct.budg.Store(scaleBudget(capacity, g.Share))
		r.groups[g.Name] = acct
	}
	if _, ok := r.groups[DefaultGroup]; !ok {
		acct := &account{name: DefaultGroup}
		atomic.StoreUint64(&acct.share, math.Float64bits(1))
		acct.budg.Store(capacity)
		r.groups[DefaultGroup] = acct
	}
	for _, t := range spec.Tenants {
		group := t.Group
		if group == "" {
			group = DefaultGroup
		}
		g, ok := r.groups[group]
		if !ok {
			return nil, fmt.Errorf("%w: tenant %q names undeclared group %q", ErrConfig, t.Name, t.Group)
		}
		acct := &tenantAcct{group: g}
		acct.name = t.Name
		atomic.StoreUint64(&acct.share, math.Float64bits(t.Share))
		acct.budg.Store(scaleBudget(g.budg.Load(), t.Share))
		r.tenants.Store(t.Name, acct)
		r.nAccounts++
	}
	return r, nil
}

// PrefixCapacity is the reservable α-prefix area budgets resolve
// against: shards × (m − ⌊α·m⌋) × horizon processor·ticks. The floor
// term is computed exactly as resd computes its per-shard α floor, and a
// cross-package test pins the two together — callers must use this
// helper rather than re-deriving the formula, or the budgets quotas
// enforce silently drift from the prefix the shards actually reserve. A
// non-positive result means α leaves no reservable prefix at all.
func PrefixCapacity(shards, m int, alpha float64, horizon int64) int64 {
	floor := int(alpha * float64(m))
	return int64(shards) * int64(m-floor) * horizon
}

// scaleBudget resolves share × parent without float overflow surprises.
func scaleBudget(parent int64, share float64) int64 {
	b := int64(share * float64(parent))
	if b < 0 {
		b = 0
	}
	if b > parent {
		b = parent
	}
	return b
}

// Mode returns the current enforcement mode.
func (r *Registry) Mode() Mode { return Mode(r.mode.Load()) }

// SetMode switches enforcement at runtime. Switching soft→hard does not
// evict tenants already over budget; their admissions fail until usage
// drains below their share.
func (r *Registry) SetMode(m Mode) { r.mode.Store(uint32(m)) }

// Capacity returns the global reservable-area capacity budgets are
// fractions of.
func (r *Registry) Capacity() int64 { return r.capacity }

// acct returns the tenant's account, creating it under DefaultGroup with
// the default share on first sight. The common case — an existing tenant
// — is one lock-free sync.Map read. Past MaxAccounts, unknown names
// alias to the default tenant's account instead of materialising a new
// one (see the MaxAccounts comment).
func (r *Registry) acct(name string) *tenantAcct {
	if name == "" {
		name = DefaultTenant
	}
	if v, ok := r.tenants.Load(name); ok {
		return v.(*tenantAcct)
	}
	r.mkMu.Lock()
	defer r.mkMu.Unlock()
	if v, ok := r.tenants.Load(name); ok {
		return v.(*tenantAcct)
	}
	if r.nAccounts >= MaxAccounts && name != DefaultTenant {
		return r.acctLocked(DefaultTenant)
	}
	return r.acctLocked(name)
}

// acctLocked creates (or returns) an account while holding mkMu.
func (r *Registry) acctLocked(name string) *tenantAcct {
	if v, ok := r.tenants.Load(name); ok {
		return v.(*tenantAcct)
	}
	g := r.groups[DefaultGroup]
	acct := &tenantAcct{group: g}
	acct.name = name
	atomic.StoreUint64(&acct.share, math.Float64bits(r.defaultShare))
	acct.budg.Store(scaleBudget(g.budg.Load(), r.defaultShare))
	r.tenants.Store(name, acct)
	r.nAccounts++
	return acct
}

// Acquire charges area (processor·ticks) to the tenant ahead of a commit.
// In Hard mode it fails with ErrQuota — charging nothing — when the
// tenant or its group would exceed its budget; in Soft mode it always
// succeeds and only moves the fair-share ratio. Every successful Acquire
// must be balanced by exactly one Admit+Release pair or one Rollback.
func (r *Registry) Acquire(tenant string, area int64) error {
	a := r.acct(tenant)
	if r.Mode() == Soft {
		a.used.Add(area)
		a.group.used.Add(area)
		return nil
	}
	if !a.tryAcquire(area) {
		a.rejected.Add(1)
		return fmt.Errorf("%w: tenant %q used %d of %d with request area %d",
			ErrQuota, a.name, a.used.Load(), a.budg.Load(), area)
	}
	if !a.group.tryAcquire(area) {
		a.used.Add(-area)
		a.rejected.Add(1)
		a.group.rejected.Add(1) // the group budget was the binding constraint
		return fmt.Errorf("%w: group %q used %d of %d with request area %d (tenant %q)",
			ErrQuota, a.group.name, a.group.used.Load(), a.group.budg.Load(), area, a.name)
	}
	return nil
}

// Rollback returns an Acquire that never became an admission (the commit
// failed or the service rejected downstream of the quota check).
func (r *Registry) Rollback(tenant string, area int64) {
	a := r.acct(tenant)
	a.used.Add(-area)
	a.group.used.Add(-area)
}

// Admit records that an Acquire became a held reservation.
func (r *Registry) Admit(tenant string) {
	a := r.acct(tenant)
	a.inflight.Add(1)
	a.group.inflight.Add(1)
	a.admitted.Add(1)
	a.group.admitted.Add(1)
}

// Release returns a held reservation's area on Cancel.
func (r *Registry) Release(tenant string, area int64) {
	a := r.acct(tenant)
	a.used.Add(-area)
	a.inflight.Add(-1)
	a.cancelled.Add(1)
	a.group.used.Add(-area)
	a.group.inflight.Add(-1)
	a.group.cancelled.Add(1)
}

// Ratio returns the tenant's fair-share pressure: the larger of its own
// and its group's usage-to-budget ratio. Soft mode serves contending
// Reserves lowest ratio first.
func (r *Registry) Ratio(tenant string) float64 {
	a := r.acct(tenant)
	return math.Max(a.ratio(), a.group.ratio())
}

// Usage reports the tenant's current quota state, creating the account if
// the tenant is new (mirroring what its first admission would do).
func (r *Registry) Usage(tenant string) Usage {
	return r.acct(tenant).usage()
}

func (a *tenantAcct) usage() Usage {
	return Usage{
		Tenant:    a.name,
		Group:     a.group.name,
		Share:     a.shareVal(),
		Budget:    a.budg.Load(),
		Used:      a.used.Load(),
		Inflight:  a.inflight.Load(),
		Admitted:  a.admitted.Load(),
		Cancelled: a.cancelled.Load(),
		Rejected:  a.rejected.Load(),
	}
}

// SetShare re-budgets a tenant at runtime (the QuotaSet wire op): its
// share of its group's budget becomes share ∈ (0,1]. A share below the
// tenant's current usage is allowed — nothing is evicted, but hard-mode
// admissions fail until usage drains under the new budget.
func (r *Registry) SetShare(tenant string, share float64) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if err := validName("tenant", tenant); err != nil {
		return err
	}
	if err := validShare("tenant "+tenant, share); err != nil {
		return err
	}
	a := r.acct(tenant)
	atomic.StoreUint64(&a.share, math.Float64bits(share))
	a.budg.Store(scaleBudget(a.group.budg.Load(), share))
	return nil
}

// Tenants returns every known tenant's usage, sorted by name — the
// operator's ledger view.
func (r *Registry) Tenants() []Usage {
	var out []Usage
	r.tenants.Range(func(_, v any) bool {
		out = append(out, v.(*tenantAcct).usage())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Groups returns every group's usage (Group field empty, Tenant holding
// the group name), sorted by name.
func (r *Registry) Groups() []Usage {
	out := make([]Usage, 0, len(r.groups))
	for _, g := range r.groups {
		out = append(out, Usage{
			Tenant:    g.name,
			Share:     g.shareVal(),
			Budget:    g.budg.Load(),
			Used:      g.used.Load(),
			Inflight:  g.inflight.Load(),
			Admitted:  g.admitted.Load(),
			Cancelled: g.cancelled.Load(),
			Rejected:  g.rejected.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
