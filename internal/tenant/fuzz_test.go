package tenant

import (
	"errors"
	"testing"
)

// FuzzQuotaAccounting replays an arbitrary serial Acquire/Release/SetShare
// stream through a Registry and cross-checks every decision against a
// plain map-based oracle applying the budget rules (tenant AND group cap)
// by hand. Any divergence — an admit the oracle rejects, a rejection it
// admits, usage drifting from the oracle's ledger — means the CAS
// accounting or the hierarchy resolution broke. The final drain must
// return every account to zero.
func FuzzQuotaAccounting(f *testing.F) {
	f.Add([]byte{0, 0, 10, 0, 1, 10, 1, 0, 0, 0, 2, 200})
	f.Add([]byte{0, 2, 255, 0, 2, 255, 2, 2, 9, 0, 1, 1})
	f.Add([]byte{3, 0, 128, 0, 0, 100, 3, 0, 16, 0, 0, 100})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 1 << 10
		tenants := []string{"a", "b", "c"}
		shares := []float64{0.5, 0.25, 0.125}
		spec := Spec{Groups: []GroupSpec{{Name: "g", Share: 0.5}}}
		groupOf := func(i int) string {
			if i%2 == 0 {
				return "g"
			}
			return ""
		}
		for i, name := range tenants {
			spec.Tenants = append(spec.Tenants, TenantSpec{Name: name, Group: groupOf(i), Share: shares[i]})
		}
		r, err := New(capacity, spec)
		if err != nil {
			t.Fatal(err)
		}

		// Oracle ledger: resolved budgets and used, per tenant and group.
		groupBudget := map[string]int64{"g": capacity / 2, DefaultGroup: capacity}
		budget := map[string]int64{}
		used := map[string]int64{}
		groupUsed := map[string]int64{}
		for i, name := range tenants {
			g := groupOf(i)
			if g == "" {
				g = DefaultGroup
			}
			budget[name] = int64(shares[i] * float64(groupBudget[g]))
		}
		type grant struct {
			tenant string
			area   int64
		}
		var held []grant
		oracleGroup := func(name string) string {
			for i, t := range tenants {
				if t == name {
					g := groupOf(i)
					if g == "" {
						g = DefaultGroup
					}
					return g
				}
			}
			return DefaultGroup
		}

		for len(ops) >= 3 {
			op, a, b := ops[0]%3, ops[1], ops[2]
			ops = ops[3:]
			name := tenants[int(a)%len(tenants)]
			g := oracleGroup(name)
			switch op {
			case 0: // acquire
				area := int64(b) + 1
				wantOK := used[name]+area <= budget[name] && groupUsed[g]+area <= groupBudget[g]
				err := r.Acquire(name, area)
				if (err == nil) != wantOK {
					t.Fatalf("Acquire(%s, %d) err=%v, oracle ok=%v (used=%d budget=%d groupUsed=%d groupBudget=%d)",
						name, area, err, wantOK, used[name], budget[name], groupUsed[g], groupBudget[g])
				}
				if err != nil {
					if !errors.Is(err, ErrQuota) {
						t.Fatalf("Acquire error is not ErrQuota: %v", err)
					}
					continue
				}
				r.Admit(name)
				used[name] += area
				groupUsed[g] += area
				held = append(held, grant{name, area})
			case 1: // release one held grant
				if len(held) == 0 {
					continue
				}
				k := int(a) % len(held)
				gr := held[k]
				held = append(held[:k], held[k+1:]...)
				r.Release(gr.tenant, gr.area)
				used[gr.tenant] -= gr.area
				groupUsed[oracleGroup(gr.tenant)] -= gr.area
			case 2: // shrink/grow a share and re-resolve the oracle budget
				share := (float64(b%100) + 1) / 100
				if err := r.SetShare(name, share); err != nil {
					t.Fatalf("SetShare(%s, %v): %v", name, share, err)
				}
				budget[name] = int64(share * float64(groupBudget[oracleGroup(name)]))
			}
			for _, tn := range tenants {
				if u := r.Usage(tn); u.Used != used[tn] {
					t.Fatalf("tenant %s used = %d, oracle %d", tn, u.Used, used[tn])
				}
			}
		}
		for _, gr := range held {
			r.Release(gr.tenant, gr.area)
		}
		for _, tn := range tenants {
			if u := r.Usage(tn); u.Used != 0 || u.Inflight != 0 {
				t.Fatalf("tenant %s not drained: %+v", tn, u)
			}
		}
		for _, gu := range r.Groups() {
			if gu.Used != 0 {
				t.Fatalf("group %s not drained: %+v", gu.Tenant, gu)
			}
		}
	})
}
