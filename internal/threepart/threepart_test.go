package threepart

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	ok := &Instance{Items: []int64{7, 7, 6, 8, 5, 7}, B: 20}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []struct {
		in   Instance
		want error
	}{
		{Instance{Items: []int64{1, 2}, B: 3}, ErrShape},
		{Instance{Items: nil, B: 3}, ErrShape},
		{Instance{Items: []int64{1, 2, 3}, B: 7}, ErrSum},
		{Instance{Items: []int64{1, -2, 3}, B: 2}, ErrItem},
		{Instance{Items: []int64{0, 2, 3}, B: 5}, ErrItem},
	}
	for _, c := range cases {
		if err := c.in.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestStrict(t *testing.T) {
	strict := &Instance{Items: []int64{7, 7, 6, 8, 6, 6}, B: 20}
	if !strict.Strict() {
		t.Error("all items in (5,10) should be strict")
	}
	loose := &Instance{Items: []int64{10, 5, 5, 8, 6, 6}, B: 20}
	if loose.Strict() {
		t.Error("item 10 = B/2 violates strictness")
	}
}

func TestSolveTinyYes(t *testing.T) {
	in := &Instance{Items: []int64{7, 7, 6, 8, 5, 7}, B: 20}
	groups, ok := in.Solve()
	if !ok {
		t.Fatal("YES instance reported unsolvable")
	}
	if err := in.VerifyPartition(groups); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTinyNo(t *testing.T) {
	// Sum = 2*18=36 with k=2, B=18, but the 17 forces a group 17+x+y=18
	// with positive x,y — impossible.
	in := &Instance{Items: []int64{17, 9, 1, 1, 7, 1}, B: 18}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := in.Solve(); ok {
		t.Fatal("NO instance reported solvable")
	}
}

func TestSolveK1(t *testing.T) {
	in := &Instance{Items: []int64{5, 7, 8}, B: 20}
	groups, ok := in.Solve()
	if !ok || len(groups) != 1 {
		t.Fatalf("k=1 failed: %v %v", groups, ok)
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	in := &Instance{Items: []int64{1, 2}, B: 3}
	if _, ok := in.Solve(); ok {
		t.Fatal("invalid instance solved")
	}
}

func TestSolveWithDuplicates(t *testing.T) {
	// All items equal: trivially solvable; the equal-value skip must not
	// lose solutions.
	in := &Instance{Items: []int64{5, 5, 5, 5, 5, 5, 5, 5, 5}, B: 15}
	groups, ok := in.Solve()
	if !ok {
		t.Fatal("uniform instance unsolvable")
	}
	if err := in.VerifyPartition(groups); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateYesAlwaysSolvable(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 40; trial++ {
		k := r.IntRange(1, 6)
		b := int64(r.IntRange(12, 200))
		in := GenerateYes(r, k, b)
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: generated instance invalid: %v", trial, err)
		}
		if !in.Strict() {
			t.Fatalf("trial %d: generated instance not strict: %+v", trial, in)
		}
		groups, ok := in.Solve()
		if !ok {
			t.Fatalf("trial %d: YES instance unsolvable: %+v", trial, in)
		}
		if err := in.VerifyPartition(groups); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyPartitionRejects(t *testing.T) {
	in := &Instance{Items: []int64{7, 7, 6, 8, 5, 7}, B: 20}
	cases := [][][3]int{
		{{0, 1, 2}},            // wrong group count
		{{0, 1, 2}, {3, 4, 4}}, // duplicate index
		{{0, 1, 2}, {3, 4, 9}}, // out of range
		{{0, 1, 3}, {2, 4, 5}}, // wrong sums (22 and 18)
	}
	for i, g := range cases {
		if err := in.VerifyPartition(g); err == nil {
			t.Errorf("case %d accepted: %v", i, g)
		}
	}
}

func TestGenerateYesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GenerateYes(k=0) did not panic")
		}
	}()
	GenerateYes(rng.New(1), 0, 100)
}

func BenchmarkSolveK4(b *testing.B) {
	r := rng.New(7)
	in := GenerateYes(r, 4, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := in.Solve(); !ok {
			b.Fatal("unsolvable")
		}
	}
}
