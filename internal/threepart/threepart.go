// Package threepart implements the 3-PARTITION problem used as the source
// of the paper's Theorem 1 reduction: the proof that RESASCHEDULING admits
// no polynomial-time approximation algorithm with finite ratio builds, from
// any 3-PARTITION instance, a single-machine scheduling instance whose
// reservations carve the timeline into k windows of length exactly B.
//
// The package provides the instance type, an exact backtracking solver
// (3-PARTITION is strongly NP-complete; the solver is exponential but fine
// at the sizes the experiments use), and a generator of YES instances.
package threepart

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Instance is a 3-PARTITION instance: 3k positive integers that should be
// split into k triples each summing to B.
type Instance struct {
	// Items are the 3k integers.
	Items []int64
	// B is the target sum of each triple.
	B int64
}

// K returns the number of groups, len(Items)/3.
func (in *Instance) K() int { return len(in.Items) / 3 }

// Errors returned by Validate.
var (
	ErrShape = errors.New("threepart: item count not a positive multiple of 3")
	ErrSum   = errors.New("threepart: items do not sum to k*B")
	ErrItem  = errors.New("threepart: non-positive item")
)

// Validate checks the structural requirements: 3k items, all positive,
// summing to k·B. (It does not require the strict B/4 < x < B/2 condition
// of the canonical strongly NP-complete variant; the solver handles general
// instances, and Strict reports whether the condition holds.)
func (in *Instance) Validate() error {
	if len(in.Items) == 0 || len(in.Items)%3 != 0 {
		return fmt.Errorf("%w: %d items", ErrShape, len(in.Items))
	}
	var sum int64
	for _, x := range in.Items {
		if x <= 0 {
			return fmt.Errorf("%w: %d", ErrItem, x)
		}
		sum += x
	}
	if sum != int64(in.K())*in.B {
		return fmt.Errorf("%w: sum=%d, k*B=%d", ErrSum, sum, int64(in.K())*in.B)
	}
	return nil
}

// Strict reports whether every item lies strictly between B/4 and B/2 —
// the condition under which every group of sum B automatically has exactly
// three elements.
func (in *Instance) Strict() bool {
	for _, x := range in.Items {
		if 4*x <= in.B || 2*x >= in.B {
			return false
		}
	}
	return true
}

// solver carries the backtracking state for Solve.
type solver struct {
	in   *Instance
	idx  []int // item indices sorted by decreasing value
	used []bool
	out  [][3]int
}

// fillGroups completes groups g..k-1. The first unused item always anchors
// the current group (any valid partition can be reordered this way), which
// eliminates group-permutation symmetry.
func (s *solver) fillGroups(g int) bool {
	if g == s.in.K() {
		return true
	}
	anchor := -1
	for p := range s.idx {
		if !s.used[s.idx[p]] {
			anchor = p
			break
		}
	}
	i := s.idx[anchor]
	s.used[i] = true
	members := [3]int{i}
	if s.complete(g, anchor, 1, s.in.Items[i], &members) {
		return true
	}
	s.used[i] = false
	return false
}

// complete enumerates the remaining members of group g (scanning positions
// after fromPos in the sorted order so each pair is tried once) and, when
// the triple sums to B, recurses into the next group. Equal values at the
// same depth are skipped to avoid symmetric retries.
func (s *solver) complete(g, fromPos, have int, sum int64, members *[3]int) bool {
	if have == 3 {
		if sum != s.in.B {
			return false
		}
		s.out = append(s.out, *members)
		if s.fillGroups(g + 1) {
			return true
		}
		s.out = s.out[:len(s.out)-1]
		return false
	}
	var prev int64 = -1
	for p := fromPos + 1; p < len(s.idx); p++ {
		i := s.idx[p]
		if s.used[i] {
			continue
		}
		v := s.in.Items[i]
		if v == prev {
			continue
		}
		if sum+v > s.in.B {
			continue // descending order: smaller items may still fit
		}
		prev = v
		s.used[i] = true
		members[have] = i
		if s.complete(g, p, have+1, sum+v, members) {
			return true
		}
		s.used[i] = false
	}
	return false
}

// Solve searches for a partition of the items into k groups of three with
// equal sums B. It returns the groups as index triples, or ok=false when
// the instance is a NO instance. Complexity is exponential; intended for
// k up to ~8-10.
func (in *Instance) Solve() (groups [][3]int, ok bool) {
	if in.Validate() != nil {
		return nil, false
	}
	n := len(in.Items)
	s := &solver{in: in, used: make([]bool, n)}
	s.idx = make([]int, n)
	for i := range s.idx {
		s.idx[i] = i
	}
	sort.Slice(s.idx, func(a, b int) bool { return in.Items[s.idx[a]] > in.Items[s.idx[b]] })
	if s.fillGroups(0) {
		return s.out, true
	}
	return nil, false
}

// VerifyPartition checks that groups is a valid solution: a partition of
// all indices into triples each summing to B.
func (in *Instance) VerifyPartition(groups [][3]int) error {
	if len(groups) != in.K() {
		return fmt.Errorf("threepart: %d groups, want %d", len(groups), in.K())
	}
	seen := make([]bool, len(in.Items))
	for gi, g := range groups {
		var sum int64
		for _, i := range g {
			if i < 0 || i >= len(in.Items) {
				return fmt.Errorf("threepart: group %d has invalid index %d", gi, i)
			}
			if seen[i] {
				return fmt.Errorf("threepart: index %d used twice", i)
			}
			seen[i] = true
			sum += in.Items[i]
		}
		if sum != in.B {
			return fmt.Errorf("threepart: group %d sums to %d, want %d", gi, sum, in.B)
		}
	}
	return nil
}

// GenerateYes produces a random YES instance with k groups and target B
// (B must be at least 12 so the strict window (B/4, B/2) has room for
// distinct triples). Items are shuffled so solvers cannot exploit order.
func GenerateYes(r *rng.PCG, k int, b int64) *Instance {
	if k < 1 || b < 12 {
		panic("threepart: GenerateYes needs k >= 1, B >= 12")
	}
	items := make([]int64, 0, 3*k)
	for g := 0; g < k; g++ {
		// Draw x, y in (B/4, B/2) and set z = B-x-y, retrying until z is
		// also strictly inside (B/4, B/2).
		for {
			x := r.Int63Range(b/4+1, b/2-1)
			y := r.Int63Range(b/4+1, b/2-1)
			z := b - x - y
			if z > b/4 && z < b/2 {
				items = append(items, x, y, z)
				break
			}
		}
	}
	r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return &Instance{Items: items, B: b}
}
