package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
)

// --- live shard rebalancing under a skewed stream (BENCH_rebal.json) ---
//
// The scenario is the one the rebalancer exists for: a skewed arrival
// stream (first-fit placement — the deliberately naive policy that piles
// everything onto shard 0, the service-level analogue of a Zipf-heavy
// tenant hammering one partition) preloads one hot shard while seven sit
// idle. Admission cost tracks the hot shard's index density, so the
// rebalancer-off baseline pays the full preload on every operation while
// the rebalancer-on configuration, having migrated the backlog across
// all eight shards, pays roughly an eighth of it. The off/on pair is the
// benchmark axis; the recorded improvement is the acceptance claim that
// skewed-load throughput recovers toward the balanced curve.

const (
	// rebalBenchM is each partition's processor count.
	rebalBenchM = 256
	// rebalBenchShards is the partition count; the skew parks the whole
	// preload on one of them.
	rebalBenchShards = 8
	// rebalBenchPreload is the size of the skewed backlog.
	rebalBenchPreload = 16384
	// rebalBenchHorizon is the time horizon the stream covers.
	rebalBenchHorizon = 1 << 20
)

// rebalServices memoizes services per (backend, rebalance) axis point:
// the skewed preload is expensive and both the measured loop
// (Reserve+Cancel pairs) and the steady-state rebalancer preserve the
// prepared shape, so calibration re-runs can reuse the service.
var (
	rebalSvcMu    sync.Mutex
	rebalServices = map[string]*resd.Service{}
)

// rebalLoadedService builds (or reuses) a service whose preload all sits
// on shard 0, then — on the rebalance=on axis — runs migration rounds to
// completion so the measured window sees the steady balanced state, with
// the background balancer keeping it there.
func rebalLoadedService(tb testing.TB, backend string, rebalance bool) *resd.Service {
	tb.Helper()
	key := fmt.Sprintf("%s/%v", backend, rebalance)
	rebalSvcMu.Lock()
	defer rebalSvcMu.Unlock()
	if svc, ok := rebalServices[key]; ok {
		return svc
	}
	// The threshold leaves the measured transient alone: 32 in-flight
	// clients park O(1M) processor·ticks on shard 0 at any instant, a
	// ~0.2 score bump over the drained steady state, and migrating work
	// that is about to be cancelled is pure thrash. 0.35 (drained to
	// ~0.175 by the balancer's hysteresis) balances the durable backlog
	// and ignores the churn.
	// MaxMoves stays small so a round that fires mid-measurement migrates
	// a bounded slice of the backlog: one huge round would stall the
	// single-writer loops for tens of milliseconds and turn the recorded
	// figure into a lottery over whether a round landed in the window.
	cfg := resd.Config{
		Shards: rebalBenchShards, M: rebalBenchM, Backend: backend,
		Placement: "first-fit", Batch: 64,
		RebalanceThreshold: 0.35, RebalanceMaxMoves: 128,
	}
	if rebalance {
		// A calm tick: the drained steady state only needs the cheap
		// imbalance pre-check, and a fast ticker racing the explicit
		// warmup drain below would interleave two planning rounds over
		// the same candidates and leave a run-to-run different state.
		cfg.RebalanceEvery = 25 * time.Millisecond
	}
	svc, err := resd.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	// The preload keeps per-reservation areas within ~2× of each other:
	// the planner balances committed area, and near-uniform areas make
	// area balance imply entry-count balance, which is what admission
	// cost actually tracks. (The measured ops still mix in near-full-width
	// requests; they just cancel straight away.)
	r := rng.New(0xB1A5)
	for i := 0; i < rebalBenchPreload; i++ {
		ready := core.Time(r.Int63n(rebalBenchHorizon))
		q := r.Intn(17) + 24
		dur := core.Time(r.Intn(21) + 60)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	if rebalance {
		// Drain the backlog migration before measuring: the bench records
		// the steady balanced state, not the one-off transfer.
		if _, err := svc.RebalanceAll(0); err != nil {
			tb.Fatal(err)
		}
	}
	rebalServices[key] = svc // retained for the process lifetime, by design
	return svc
}

// rebalBenchOp is one measured admission: Reserve at a random ready time
// and Cancel straight after, the same steady-state op BenchmarkResd uses.
// First-fit routes every request at the (formerly) hot shard 0, so the
// op's cost is exactly the per-shard density the rebalancer changes.
func rebalBenchOp(svc *resd.Service, r *rng.PCG) error {
	ready := core.Time(r.Int63n(rebalBenchHorizon))
	q := r.Intn(rebalBenchM/4) + 1
	if r.Bool(0.15) {
		q = rebalBenchM - 16 + r.Intn(16)
	}
	dur := core.Time(r.Intn(100) + 20)
	resv, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
	if err != nil {
		return err
	}
	return svc.Cancel(resv.ID)
}

// BenchmarkRebalance measures skewed-stream admission throughput with the
// rebalancer off (hot-shard baseline) and on (backlog migrated across all
// shards), on both capacity backends. Recorded in BENCH_rebal.json and
// gated by cmd/benchgate -rebal.
func BenchmarkRebalance(b *testing.B) {
	for _, backend := range []string{"array", "tree"} {
		for _, rebalance := range []bool{false, true} {
			mode := "off"
			if rebalance {
				mode = "on"
			}
			b.Run(fmt.Sprintf("backend=%s/rebalance=%s", backend, mode), func(b *testing.B) {
				svc := rebalLoadedService(b, backend, rebalance)
				var seq uint64
				b.SetParallelism(32)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rebalSvcMu.Lock()
					seq++
					r := rng.NewStream(77, seq)
					rebalSvcMu.Unlock()
					for pb.Next() {
						if err := rebalBenchOp(svc, r); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// TestEmitRebalBenchJSON records the off/on curve as BENCH_rebal.json at
// the repository root. Opt-in (REPRO_EMIT_BENCH=1): it runs seconds of
// measured benchmarks. It also enforces the acceptance claim: under the
// skewed stream, enabling the rebalancer improves admission throughput
// over the rebalancer-off baseline on both backends.
func TestEmitRebalBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure rebalancing and write BENCH_rebal.json")
	}
	type row struct {
		Backend      string  `json:"backend"`
		Rebalance    string  `json:"rebalance"`
		NsPerOp      float64 `json:"ns_per_op"`
		OpsPerSec    float64 `json:"ops_per_sec"`
		SpeedupVsOff float64 `json:"speedup_vs_off"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		M         int    `json:"m"`
		Shards    int    `json:"shards"`
		Preload   int    `json:"preloaded_reservations"`
		Horizon   int64  `json:"horizon_ticks"`
		Workload  string `json:"workload"`
		GoVersion string `json:"go_version"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{
		Benchmark: "live shard rebalancing: skewed-stream admission throughput, rebalancer off vs on",
		M:         rebalBenchM,
		Shards:    rebalBenchShards,
		Preload:   rebalBenchPreload,
		Horizon:   rebalBenchHorizon,
		Workload: "first-fit skew parks the whole preload on shard 0; measured ops are " +
			"Reserve+Cancel pairs against that shard, 32 clients, 15% near-machine-wide requests; " +
			"the on axis measures the steady state after the backlog migrated across all shards",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	measure := func(backend string, rebalance bool) float64 {
		svc := rebalLoadedService(t, backend, rebalance)
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				rebalSvcMu.Lock()
				seq++
				r := rng.NewStream(77, seq)
				rebalSvcMu.Unlock()
				for pb.Next() {
					if err := rebalBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp())
	}
	for _, backend := range []string{"array", "tree"} {
		off := measure(backend, false)
		on := measure(backend, true)
		out.Rows = append(out.Rows,
			row{Backend: backend, Rebalance: "off", NsPerOp: off, OpsPerSec: 1e9 / off, SpeedupVsOff: 1},
			row{Backend: backend, Rebalance: "on", NsPerOp: on, OpsPerSec: 1e9 / on, SpeedupVsOff: off / on},
		)
		t.Logf("%s: off %.0f ns/op, on %.0f ns/op (%.2f×)", backend, off, on, off/on)
		if on >= off {
			t.Errorf("%s backend: rebalancer on is not faster than off (%.0f vs %.0f ns/op) — the acceptance claim fails", backend, on, off)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_rebal.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
