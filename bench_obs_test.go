package repro

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
	"repro/internal/slo"
)

// --- observability overhead (BENCH_obs.json) ---
//
// The obs layer promises to be invisible from the admission hot path:
// metrics are lock-free atomics bumped outside the event loops' critical
// decisions, scrapes read published snapshots, and tracing samples one in
// N requests into a fixed ring. BenchmarkObsOverhead prices that promise:
// the same preloaded Reserve+Cancel workload as BenchmarkResdThroughput,
// once against a bare service and once against one carrying a full metric
// registry plus 1-in-64 admission tracing. The recorded ratio is the
// figure the CI gate holds the instrumentation to.

// obsBenchTraceSample is the tracing rate of the instrumented variant:
// the production-shaped setting (sampled, not exhaustive).
const obsBenchTraceSample = 64

// obsServices memoizes the preloaded per-mode services, exactly
// as resdServices does: preloading is seconds of work and the measured
// loop restores its own state.
var (
	obsSvcMu    sync.Mutex
	obsServices = map[string]*resd.Service{}
)

// obsLoadedService returns the preloaded 4-shard tree service, bare or
// carrying the full obs surface (registry + sampled tracing). The preload
// mirrors resdLoadedService so the measured op sees the same blocking
// segments in both variants. The "watch" mode service is instrumented
// exactly like "on" — the live Watch subscriber is attached per run by
// attachObsWatcher, not here. The "flight" mode additionally arms the
// flight recorder (journal hooks, per-turn heartbeat stamps, and the
// watchdog polling shard probes at the default cadence), pricing the
// black-box layer's hot-path footprint. Bundles stay disabled (no
// directory): a healthy benchmark never captures one, and the figure
// priced here is the always-on cost, not anomaly handling.
func obsLoadedService(tb testing.TB, mode string) *resd.Service {
	tb.Helper()
	obsSvcMu.Lock()
	defer obsSvcMu.Unlock()
	if svc, ok := obsServices[mode]; ok {
		return svc
	}
	cfg := resd.Config{
		Shards: 4, M: resdBenchM, Backend: "tree",
		Placement: "least-loaded", Batch: 64,
	}
	if mode != "off" {
		cfg.Obs = &resd.ObsConfig{
			Registry:    obs.NewRegistry(),
			TraceSample: obsBenchTraceSample,
		}
	}
	if mode == "flight" {
		rec, err := flight.New(flight.Config{Registry: cfg.Obs.Registry})
		if err != nil {
			tb.Fatal(err)
		}
		cfg.Obs.Flight = rec
	}
	if mode == "slo" {
		// A representative armed engine: one objective per signal kind, so
		// the hot path pays every per-decision cost the engine can impose
		// (the sloBook atomics and the service-wide slack histogram — the
		// evaluation ticker itself runs off-path at its own period).
		eng, err := slo.New(slo.Config{
			Registry: cfg.Obs.Registry,
			Spec: slo.Spec{Objectives: []slo.ObjectiveSpec{
				{Name: "deadline", Signal: "deadline_attainment", Target: 0.99},
				{Name: "slack", Signal: "slack", Target: 0.95, Bound: 1 << 12},
				{Name: "success", Signal: "error_rate", Target: 0.999},
			}},
		})
		if err != nil {
			tb.Fatal(err)
		}
		cfg.Obs.SLO = eng
	}
	svc, err := resd.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < resdBenchTotalRes; i++ {
		ready := core.Time(r.Int63n(resdBenchHorizon))
		q := r.Intn(resdBenchM/4) + 1
		if i%10 == 0 {
			q = resdBenchM - r.Intn(8) - 1
		}
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	obsServices[mode] = svc // retained for the process lifetime, by design
	return svc
}

// attachObsWatcher puts a live Watch subscriber on the service for the
// duration of a benchmark run: a loopback reswire server, one client
// subscribed to every telemetry family at the fastest interval the
// protocol grants, and a goroutine draining the frames. The returned
// stop function tears the whole chain down and waits for the drain to
// exit. This is the "someone is tailing the live dashboard" state the
// obs=watch mode prices.
func attachObsWatcher(tb testing.TB, svc *resd.Service) (stop func()) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := reswire.NewServer(svc)
	go srv.Serve(ln)
	client, err := reswire.Dial(ln.Addr().String(), reswire.Options{})
	if err != nil {
		ln.Close()
		tb.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := client.Watch(ctx, reswire.WatchOptions{Interval: reswire.MinWatchInterval})
	if err != nil {
		cancel()
		client.Close()
		ln.Close()
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	return func() {
		cancel()
		<-done
		client.Close()
		ln.Close()
	}
}

// BenchmarkObsOverhead measures the admission path with the obs layer
// off, on, on with a live Watch subscriber streaming telemetry at the
// protocol's minimum interval, on with the flight recorder armed
// (journal, heartbeats, watchdog), and on with the SLO engine counting
// every admission decision. The sub-benchmarks run the identical
// workload; the per-mode/off ratios are the whole cost of metrics,
// sampled tracing, a tailing dashboard, the black-box layer, and
// burn-rate alerting.
func BenchmarkObsOverhead(b *testing.B) {
	// Build every mode's service before measuring any of them: the
	// recorded figures are ratios, and lazily preloading inside each
	// sub-benchmark would measure "off" with one retained service on the
	// heap and "watch" with three — a systematic GC handicap on the later
	// modes that repetition cannot average away.
	for _, mode := range []string{"off", "on", "watch", "flight", "slo"} {
		obsLoadedService(b, mode)
	}
	// Three interleaved rounds of the mode triple: the figures this
	// benchmark exists for are ratios, and a machine that drifts during
	// the sweep (thermals, cgroup throttling, a co-tenant waking up)
	// would otherwise mint fake overhead on whichever mode always ran
	// last — -count can't fix that, it repeats each leaf consecutively.
	// Go suffixes the repeated names (#01, #02); benchgate strips the
	// suffix and averages the rounds.
	for round := 0; round < 3; round++ {
		for _, mode := range []string{"off", "on", "watch", "flight", "slo"} {
			b.Run("obs="+mode, func(b *testing.B) {
				svc := obsLoadedService(b, mode)
				if mode == "watch" {
					stop := attachObsWatcher(b, svc)
					defer stop()
				}
				var seq uint64
				b.SetParallelism(32)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					obsSvcMu.Lock()
					seq++
					r := rng.NewStream(42, seq)
					obsSvcMu.Unlock()
					for pb.Next() {
						if err := resdBenchOp(svc, r); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// TestEmitObsBenchJSON records the off/on/watch/flight figures and their
// ratios as BENCH_obs.json at the repository root. Opt-in
// (REPRO_EMIT_BENCH=1). It also enforces the design claim directly: full
// instrumentation must cost less than 5% of admission throughput — even
// with a live Watch subscriber streaming telemetry while the measurement
// runs, and even with the flight recorder's heartbeats and watchdog
// armed.
func TestEmitObsBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the obs overhead and write BENCH_obs.json")
	}
	type row struct {
		Obs     string  `json:"obs"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	out := struct {
		Benchmark      string  `json:"benchmark"`
		M              int     `json:"m"`
		Shards         int     `json:"shards"`
		TotalRes       int     `json:"preloaded_reservations_total"`
		TraceSample    int     `json:"trace_sample"`
		Workload       string  `json:"workload"`
		GoVersion      string  `json:"go_version"`
		MaxProcs       int     `json:"gomaxprocs"`
		Rows           []row   `json:"rows"`
		Overhead       float64 `json:"overhead"`
		WatchOverhead  float64 `json:"watch_overhead"`
		FlightOverhead float64 `json:"flight_overhead"`
		SLOOverhead    float64 `json:"slo_overhead"`
		MaxOverhead    float64 `json:"max_overhead"`
	}{
		Benchmark:   "obs instrumentation overhead: Reserve+Cancel with the metrics registry and sampled tracing off vs on vs on-with-live-Watch-subscriber vs on-with-flight-recorder vs on-with-slo-engine",
		M:           resdBenchM,
		Shards:      4,
		TotalRes:    resdBenchTotalRes,
		TraceSample: obsBenchTraceSample,
		Workload: "same preloaded stream and op mix as BenchmarkResdThroughput (32 clients, " +
			"15% near-machine-wide requests), tree backend",
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		MaxOverhead: 1.05,
	}
	measure := func(mode string) float64 {
		svc := obsLoadedService(t, mode)
		if mode == "watch" {
			stop := attachObsWatcher(t, svc)
			defer stop()
		}
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				obsSvcMu.Lock()
				seq++
				r := rng.NewStream(42, seq)
				obsSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp())
	}
	// Interleaved rounds, averaged per mode: the recorded figures are
	// ratios of numbers measured minutes apart, and a machine that drifts
	// (thermals, a co-tenant waking up) during a mode-by-mode sweep shows
	// up as fake overhead on whichever mode ran last. Rotating through
	// the modes each round spreads the drift evenly instead. Services are
	// prebuilt for the same reason BenchmarkObsOverhead prebuilds them:
	// every mode must see the identical retained heap.
	const rounds = 3
	modes := []string{"off", "on", "watch", "flight", "slo"}
	for _, mode := range modes {
		obsLoadedService(t, mode)
	}
	ns := map[string]float64{}
	for round := 0; round < rounds; round++ {
		for _, mode := range modes {
			ns[mode] += measure(mode) / rounds
		}
	}
	for _, mode := range modes {
		out.Rows = append(out.Rows, row{Obs: mode, NsPerOp: ns[mode]})
	}
	out.Overhead = ns["on"] / ns["off"]
	out.WatchOverhead = ns["watch"] / ns["off"]
	out.FlightOverhead = ns["flight"] / ns["off"]
	out.SLOOverhead = ns["slo"] / ns["off"]
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("obs off %.0f ns/op, on %.0f ns/op, watch %.0f ns/op, flight %.0f ns/op, slo %.0f ns/op: %.3f× / %.3f× / %.3f× / %.3f× overhead",
		ns["off"], ns["on"], ns["watch"], ns["flight"], ns["slo"],
		out.Overhead, out.WatchOverhead, out.FlightOverhead, out.SLOOverhead)
	if out.Overhead > out.MaxOverhead {
		t.Errorf("obs overhead %.3f× exceeds the %.2f× budget", out.Overhead, out.MaxOverhead)
	}
	if out.WatchOverhead > out.MaxOverhead {
		t.Errorf("obs overhead with a live watcher %.3f× exceeds the %.2f× budget",
			out.WatchOverhead, out.MaxOverhead)
	}
	if out.FlightOverhead > out.MaxOverhead {
		t.Errorf("obs overhead with the flight recorder armed %.3f× exceeds the %.2f× budget",
			out.FlightOverhead, out.MaxOverhead)
	}
	if out.SLOOverhead > out.MaxOverhead {
		t.Errorf("obs overhead with the SLO engine armed %.3f× exceeds the %.2f× budget",
			out.SLOOverhead, out.MaxOverhead)
	}
}
