package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resd"
	"repro/internal/rng"
)

// --- observability overhead (BENCH_obs.json) ---
//
// The obs layer promises to be invisible from the admission hot path:
// metrics are lock-free atomics bumped outside the event loops' critical
// decisions, scrapes read published snapshots, and tracing samples one in
// N requests into a fixed ring. BenchmarkObsOverhead prices that promise:
// the same preloaded Reserve+Cancel workload as BenchmarkResdThroughput,
// once against a bare service and once against one carrying a full metric
// registry plus 1-in-64 admission tracing. The recorded ratio is the
// figure the CI gate holds the instrumentation to.

// obsBenchTraceSample is the tracing rate of the instrumented variant:
// the production-shaped setting (sampled, not exhaustive).
const obsBenchTraceSample = 64

// obsServices memoizes the two preloaded services ("off", "on"), exactly
// as resdServices does: preloading is seconds of work and the measured
// loop restores its own state.
var (
	obsSvcMu    sync.Mutex
	obsServices = map[string]*resd.Service{}
)

// obsLoadedService returns the preloaded 4-shard tree service, bare or
// carrying the full obs surface (registry + sampled tracing). The preload
// mirrors resdLoadedService so the measured op sees the same blocking
// segments in both variants.
func obsLoadedService(tb testing.TB, mode string) *resd.Service {
	tb.Helper()
	obsSvcMu.Lock()
	defer obsSvcMu.Unlock()
	if svc, ok := obsServices[mode]; ok {
		return svc
	}
	cfg := resd.Config{
		Shards: 4, M: resdBenchM, Backend: "tree",
		Placement: "least-loaded", Batch: 64,
	}
	if mode == "on" {
		cfg.Obs = &resd.ObsConfig{
			Registry:    obs.NewRegistry(),
			TraceSample: obsBenchTraceSample,
		}
	}
	svc, err := resd.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < resdBenchTotalRes; i++ {
		ready := core.Time(r.Int63n(resdBenchHorizon))
		q := r.Intn(resdBenchM/4) + 1
		if i%10 == 0 {
			q = resdBenchM - r.Intn(8) - 1
		}
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	obsServices[mode] = svc // retained for the process lifetime, by design
	return svc
}

// BenchmarkObsOverhead measures the admission path with the obs layer off
// and on. The two sub-benchmarks run the identical workload; their ratio
// is the whole cost of metrics and sampled tracing.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run("obs="+mode, func(b *testing.B) {
			svc := obsLoadedService(b, mode)
			var seq uint64
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				obsSvcMu.Lock()
				seq++
				r := rng.NewStream(42, seq)
				obsSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestEmitObsBenchJSON records the off/on figures and their ratio as
// BENCH_obs.json at the repository root. Opt-in (REPRO_EMIT_BENCH=1). It
// also enforces the design claim directly: full instrumentation must cost
// less than 5% of admission throughput.
func TestEmitObsBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the obs overhead and write BENCH_obs.json")
	}
	type row struct {
		Obs     string  `json:"obs"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	out := struct {
		Benchmark   string  `json:"benchmark"`
		M           int     `json:"m"`
		Shards      int     `json:"shards"`
		TotalRes    int     `json:"preloaded_reservations_total"`
		TraceSample int     `json:"trace_sample"`
		Workload    string  `json:"workload"`
		GoVersion   string  `json:"go_version"`
		MaxProcs    int     `json:"gomaxprocs"`
		Rows        []row   `json:"rows"`
		Overhead    float64 `json:"overhead"`
		MaxOverhead float64 `json:"max_overhead"`
	}{
		Benchmark:   "obs instrumentation overhead: Reserve+Cancel with the metrics registry and sampled tracing off vs on",
		M:           resdBenchM,
		Shards:      4,
		TotalRes:    resdBenchTotalRes,
		TraceSample: obsBenchTraceSample,
		Workload: "same preloaded stream and op mix as BenchmarkResdThroughput (32 clients, " +
			"15% near-machine-wide requests), tree backend",
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		MaxOverhead: 1.05,
	}
	measure := func(mode string) float64 {
		svc := obsLoadedService(t, mode)
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				obsSvcMu.Lock()
				seq++
				r := rng.NewStream(42, seq)
				obsSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp())
	}
	var off, on float64
	for _, mode := range []string{"off", "on"} {
		ns := measure(mode)
		if mode == "off" {
			off = ns
		} else {
			on = ns
		}
		out.Rows = append(out.Rows, row{Obs: mode, NsPerOp: ns})
	}
	out.Overhead = on / off
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("obs off %.0f ns/op, on %.0f ns/op: %.3f× overhead", off, on, out.Overhead)
	if out.Overhead > out.MaxOverhead {
		t.Errorf("obs overhead %.3f× exceeds the %.2f× budget", out.Overhead, out.MaxOverhead)
	}
}
