// Command resexp runs the registered experiments that regenerate the
// paper's figures and claims (see DESIGN.md's per-experiment index), and
// prints paper-style tables with pass/fail checks.
//
// Usage:
//
//	resexp -list
//	resexp -run fig3
//	resexp -run all [-quick] [-seed 7] [-svgdir out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/expt"
)

func run() error {
	list := flag.Bool("list", false, "list experiments")
	runID := flag.String("run", "", "experiment id, or 'all'")
	quick := flag.Bool("quick", false, "reduced grids (fast)")
	seed := flag.Uint64("seed", 20070326, "experiment seed")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
	svgDir := flag.String("svgdir", "", "write experiment charts as SVG files here")
	mdPath := flag.String("md", "", "write the reports as a markdown document here")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range expt.List() {
			fmt.Printf("  %-9s %s\n            %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}
	if *runID == "" {
		return fmt.Errorf("pass -list or -run <id|all>")
	}
	cfg := expt.Config{Seed: *seed, Quick: *quick, Workers: *workers}

	var reports []*expt.Report
	if *runID == "all" {
		rs, err := expt.RunAll(cfg)
		if err != nil {
			return err
		}
		reports = rs
	} else {
		e, ok := expt.Get(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		r, err := e.Run(cfg)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r.Render())
		if !r.AllPassed() {
			failed++
		}
		if *svgDir != "" {
			for ci, c := range r.Charts {
				path := filepath.Join(*svgDir, fmt.Sprintf("%s-%d.svg", r.ID, ci))
				if err := os.WriteFile(path, []byte(c.SVG(720, 480)), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(expt.MarkdownAll(reports, cfg)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *mdPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resexp:", err)
		os.Exit(1)
	}
}
