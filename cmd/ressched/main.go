// Command ressched schedules a RESASCHEDULING instance (JSON) with a chosen
// algorithm, verifies the result, and prints the schedule, metrics and an
// optional Gantt chart.
//
// Usage:
//
//	ressched -alg lsrc-lpt -in instance.json [-backend tree] [-gantt] [-svg out.svg] [-out sched.json] [-exact]
//
// Algorithms: lsrc-fifo, lsrc-lpt, lsrc-spt, lsrc-widest, lsrc-narrowest,
// lsrc-maxwork, fcfs, cons-bf, easy-bf, shelf-nfdh, shelf-ffdh.
//
// Backends: array (flat sorted-array timeline, default) and tree (balanced
// augmented interval tree; prefer it beyond ~10^4 reservations). Both
// produce identical schedules.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gantt"
	"repro/internal/lower"
	"repro/internal/sched"
	"repro/internal/verify"
)

func run() error {
	alg := flag.String("alg", "lsrc-fifo", "scheduling algorithm")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	in := flag.String("in", "", "instance JSON file (required)")
	out := flag.String("out", "", "write the schedule JSON here")
	showGantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	svgPath := flag.String("svg", "", "write an SVG Gantt chart here")
	doExact := flag.Bool("exact", false, "also compute the exact optimum (small instances)")
	width := flag.Int("width", 90, "ASCII Gantt width")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := core.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	sc, err := sched.ByNameOn(*alg, *backend)
	if err != nil {
		return err
	}
	s, err := sc.Schedule(inst)
	if err != nil {
		return err
	}
	if err := verify.Verify(s); err != nil {
		return fmt.Errorf("produced schedule failed verification: %w", err)
	}

	lb := lower.Compute(inst)
	fmt.Printf("instance: %s  m=%d  jobs=%d  reservations=%d\n",
		inst.Name, inst.M, len(inst.Jobs), len(inst.Res))
	fmt.Printf("algorithm: %s (backend %s)\n", sc.Name(), *backend)
	fmt.Printf("makespan:  %v\n", s.Makespan())
	fmt.Printf("lower bound on C*max: %v (area %v, job-fit %v, tall %v)\n",
		lb.Best, lb.Area, lb.JobFit, lb.Tall)
	fmt.Printf("ratio vs lower bound: %.4f\n", lower.Ratio(s.Makespan(), lb.Best))

	if *doExact {
		res, err := exact.Solve(inst)
		if err != nil {
			fmt.Printf("exact: %v (result is still an upper bound)\n", err)
		}
		if res != nil {
			fmt.Printf("exact C*max: %v (optimal=%v, %d nodes)\n", res.Cmax, res.Optimal, res.Nodes)
			fmt.Printf("true ratio: %.4f\n", lower.Ratio(s.Makespan(), res.Cmax))
		}
	}
	if *showGantt {
		chart, err := gantt.ASCII(s, *width)
		if err != nil {
			return err
		}
		fmt.Println(chart)
	}
	if *svgPath != "" {
		svg, err := gantt.SVG(s, 900, 14)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := s.WriteJSON(of); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ressched:", err)
		os.Exit(1)
	}
}
