// Command ressim drives the discrete-event cluster simulator: a workload
// (an SWF trace file or a synthetic draw) arrives over time at an
// m-processor cluster with an α-restricted reservation stream, and the
// online policies (FCFS, EASY back-filling, greedy list scheduling) are
// compared on makespan, utilisation, waiting time and bounded slowdown.
//
// Usage:
//
//	ressim -m 64 -n 300 -seed 7                 # synthetic workload
//	ressim -swf trace.swf [-m 128]              # real trace
//	ressim -m 64 -n 300 -alpha 0.5 -nres 12     # with reservations
//	ressim -m 64 -n 300 -backend tree           # balanced-tree capacity index
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run() error {
	m := flag.Int("m", 64, "machine size (required for -swf without MaxProcs header)")
	n := flag.Int("n", 200, "synthetic job count")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	swf := flag.String("swf", "", "SWF trace file (overrides synthetic generation)")
	alpha := flag.Float64("alpha", 0.5, "reservation admission rule (α)")
	nres := flag.Int("nres", 0, "number of reservations to draw")
	meanIat := flag.Float64("iat", 0, "mean inter-arrival time (0 = auto)")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	flag.Parse()

	// Fail malformed flags here with a named message; downstream the same
	// values would panic (ReservationStream) or quietly generate garbage.
	if err := cliflag.First(
		cliflag.Positive("m", *m),
		cliflag.Positive("n", *n),
		cliflag.NonNegative("nres", *nres),
		cliflag.Unit("alpha", *alpha),
		cliflag.NonNegativeF("iat", *meanIat),
	); err != nil {
		return err
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}

	var arrivals []workload.Arrival
	machine := *m
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := workload.ParseSWF(f)
		if err != nil {
			return err
		}
		if tr.MaxProcs > 0 {
			machine = tr.MaxProcs
		}
		arrivals, err = tr.Arrivals(machine)
		if err != nil {
			return err
		}
	} else {
		r := rng.New(*seed)
		var err error
		arrivals, err = workload.Synthetic(r, workload.SynthConfig{
			M: machine, N: *n, MeanInterArrival: *meanIat, MaxWidthFrac: *alpha,
		})
		if err != nil {
			return err
		}
	}

	var reservations []core.Reservation
	if *nres > 0 {
		var horizon core.Time = 1
		for _, a := range arrivals {
			if end := a.At + a.Job.Len; end > horizon {
				horizon = end
			}
		}
		reservations = workload.ReservationStream(rng.New(*seed^0xBEEF), machine, *alpha, *nres, horizon)
	}

	fmt.Printf("simulating m=%d, %d jobs, %d reservations (backend %s)\n\n",
		machine, len(arrivals), len(reservations), *backend)
	table := stats.NewTable("policy", "makespan", "util", "eff-util", "avg wait", "max wait", "avg BSLD")
	for _, p := range []sim.Policy{sim.FCFSPolicy{}, sim.EASYPolicy{}, sim.GreedyPolicy{}} {
		res, err := sim.RunOn(*backend, machine, reservations, arrivals, p)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name(), err)
		}
		mt := res.Metrics
		table.AddRow(mt.Policy, int64(mt.Makespan),
			fmt.Sprintf("%.3f", mt.Utilization),
			fmt.Sprintf("%.3f", mt.EffectiveUtilization),
			fmt.Sprintf("%.1f", mt.AvgWait), int64(mt.MaxWait),
			fmt.Sprintf("%.2f", mt.AvgBoundedSlowdown))
	}
	fmt.Print(table.String())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ressim:", err)
		os.Exit(1)
	}
}
