// Command resbounds prints the paper's closed-form performance guarantees:
// single values for a given α or m, or the whole Figure 4 table/chart.
//
// Usage:
//
//	resbounds -alpha 0.5
//	resbounds -m 180
//	resbounds -fig4 -points 100 [-csv] [-chart]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/plot"
	"repro/internal/stats"
)

func run() error {
	alpha := flag.Float64("alpha", 0, "print bounds at this α in (0,1]")
	m := flag.Int("m", 0, "print the Graham bound 2-1/m for this m")
	fig4 := flag.Bool("fig4", false, "print the Figure 4 table")
	points := flag.Int("points", 50, "α grid size for -fig4")
	csv := flag.Bool("csv", false, "emit CSV instead of a text table")
	chart := flag.Bool("chart", false, "also draw an ASCII chart for -fig4")
	flag.Parse()

	did := false
	if *alpha > 0 {
		did = true
		fmt.Printf("alpha = %.4f\n", *alpha)
		fmt.Printf("  upper bound (Prop 3, 2/α):      %.4f\n", bounds.AlphaUpper(*alpha))
		fmt.Printf("  lower bound B1:                 %.4f\n", bounds.B1(*alpha))
		fmt.Printf("  lower bound B2:                 %.4f\n", bounds.B2(*alpha))
		if bounds.IsProp2Alpha(*alpha) {
			fmt.Printf("  Prop 2 bound (2/α is integer):  %.4f\n", bounds.Prop2(*alpha))
		}
		fmt.Printf("  upper/B1 gap:                   %.4f\n", bounds.Gap(*alpha))
	}
	if *m > 0 {
		did = true
		fmt.Printf("m = %d\n  Graham/LSRC bound (2 - 1/m): %.6f\n", *m, bounds.Graham(*m))
	}
	if *fig4 {
		did = true
		rows := bounds.Figure4(*points)
		t := stats.NewTable("alpha", "upper_2_over_alpha", "B1", "B2")
		var xs, us, b1s, b2s []float64
		for _, r := range rows {
			t.AddRow(r.Alpha, r.Upper, r.B1, r.B2)
			xs = append(xs, r.Alpha)
			us = append(us, r.Upper)
			b1s = append(b1s, r.B1)
			b2s = append(b2s, r.B2)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		if *chart {
			c := &plot.Chart{
				Title: "Figure 4: LSRC bounds on α-RESASCHEDULING", XLabel: "alpha",
				YMax: 10,
				Series: []plot.Series{
					{Name: "upper 2/α", X: xs, Y: us},
					{Name: "B1", X: xs, Y: b1s},
					{Name: "B2", X: xs, Y: b2s},
				},
			}
			fmt.Println(c.ASCII(72, 24))
		}
	}
	if !did {
		return fmt.Errorf("pass -alpha, -m or -fig4")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resbounds:", err)
		os.Exit(1)
	}
}
