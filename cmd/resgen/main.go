// Command resgen generates RESASCHEDULING instances: the paper's
// adversarial constructions or random/synthetic workloads, written as
// instance JSON (or SWF for synthetic traces).
//
// Usage:
//
//	resgen -kind prop2 -k 6 > fig3.json
//	resgen -kind theorem1 -k 3 -B 40 -rho 2 -seed 7 > thm1.json
//	resgen -kind graham -m 8 > graham.json
//	resgen -kind fcfs-path -m 6 -D 100 > path.json
//	resgen -kind rigid -m 32 -n 50 -seed 1 > rigid.json
//	resgen -kind alpha -m 32 -n 40 -alpha 0.5 -seed 1 > alpha.json
//	resgen -kind staircase -m 16 -n 20 -seed 1 > stair.json
//	resgen -kind synth -m 128 -n 200 -seed 1 -swf trace.swf > synth.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/threepart"
	"repro/internal/workload"
)

func run() error {
	kind := flag.String("kind", "rigid", "prop2|theorem1|graham|fcfs-path|rigid|alpha|staircase|synth")
	k := flag.Int("k", 6, "k for prop2/theorem1")
	b := flag.Int64("B", 40, "B for theorem1")
	rho := flag.Int("rho", 2, "hypothetical ratio for theorem1")
	m := flag.Int("m", 16, "machine size")
	n := flag.Int("n", 20, "job count")
	d := flag.Int64("D", 100, "D for fcfs-path")
	alpha := flag.Float64("alpha", 0.5, "alpha for alpha instances")
	maxLen := flag.Int64("maxlen", 50, "max job length (random kinds)")
	seed := flag.Uint64("seed", 1, "generator seed")
	swf := flag.String("swf", "", "also write the synthetic workload as SWF here (kind=synth)")
	flag.Parse()

	r := rng.New(*seed)
	var inst *core.Instance
	var err error
	switch *kind {
	case "prop2":
		inst, err = instances.Prop2Instance(*k)
	case "theorem1":
		tp := threepart.GenerateYes(r, *k, *b)
		inst, err = instances.FromThreePartition(tp, *rho)
	case "graham":
		inst, err = instances.GrahamAdversarial(*m)
	case "fcfs-path":
		inst, err = instances.FCFSPathological(*m, core.Time(*d))
	case "rigid":
		inst = instances.RandomRigid(r, instances.RigidConfig{
			M: *m, N: *n, MaxLen: core.Time(*maxLen), PowerOfTwo: true,
		})
	case "alpha":
		inst = instances.RandomAlpha(r, instances.AlphaConfig{
			M: *m, N: *n, Alpha: *alpha, MaxLen: core.Time(*maxLen),
			NRes: *n / 4, Horizon: core.Time(*maxLen) * 8,
		})
	case "staircase":
		inst = instances.RandomStaircase(r, instances.StaircaseConfig{
			M: *m, N: *n, MaxLen: core.Time(*maxLen),
			Steps: 3, MaxStepLen: core.Time(*maxLen) * 2,
		})
	case "synth":
		arr, aerr := workload.Synthetic(r, workload.SynthConfig{M: *m, N: *n})
		if aerr != nil {
			return aerr
		}
		if *swf != "" {
			tr := &workload.Trace{MaxProcs: *m}
			for i, a := range arr {
				tr.Jobs = append(tr.Jobs, workload.SWFJob{
					ID: i + 1, Submit: int64(a.At), Wait: -1,
					Run: int64(a.Job.Len), Procs: a.Job.Procs,
					ReqProcs: a.Job.Procs, ReqTime: int64(a.Job.Len), Status: 1,
				})
			}
			f, ferr := os.Create(*swf)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			if err := workload.WriteSWF(f, tr); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *swf)
		}
		inst = &core.Instance{Name: "synth", M: *m}
		for _, a := range arr {
			inst.Jobs = append(inst.Jobs, a.Job)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return err
	}
	return inst.WriteJSON(os.Stdout)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resgen:", err)
		os.Exit(1)
	}
}
