// Command resdsrv serves the internal/resd reservation-admission service
// over the reswire protocol: it builds a sharded service from flags,
// listens on a TCP address, and decodes wire frames straight into the
// shard event loops, so remote clients get the same α-rule and
// deadline-rejection semantics as in-process callers — over a socket.
//
// Usage:
//
//	resdsrv -addr :7433 -shards 8 -m 256 -alpha 0.5 -backend tree
//	resdsrv -addr 127.0.0.1:0 -placement p2c    # ephemeral port, printed
//	resdsrv -quotas quotas.json -qhorizon 1000000   # multi-tenant budgets
//	resdsrv -shards 8 -rebalance 100ms -rebalfreeze 1000   # live rebalancing
//
// With -rebalance, a background rebalancer periodically scores the
// committed-area spread across shards and migrates admitted future
// reservations from hot partitions to idle ones (two-phase, conserving
// capacity and tenant quota at every instant). -rebalthreshold sets the
// imbalance score that triggers a round, -rebalfreeze pins reservations
// starting within that many ticks of the logical time origin, and
// -rebalmoves caps migrations per round. Remote clients see the effect in
// the Stats op's MigratedIn/MigratedOut counters (protocol v3). The
// "pressure" placement routes each Reserve by the requesting tenant's own
// per-shard footprint — quota-aware placement for skewed tenant mixes.
//
// With -quotas, the server partitions the reservable α-prefix between
// tenants: the JSON file declares the enforcement mode ("hard" rejects
// with REJECTED_QUOTA, "soft" reorders contended batches by fair share)
// and the group/tenant share hierarchy, and budgets resolve against
// shards × (m − ⌊α·m⌋) × -qhorizon processor·ticks. For example:
//
//	{
//	  "mode": "hard",
//	  "groups":  [{"name": "prod", "share": 0.75}],
//	  "tenants": [{"name": "etl", "group": "prod", "share": 0.5},
//	              {"name": "adhoc", "share": 0.1}]
//	}
//
// With -obs, the server opens a second, HTTP listener exposing the whole
// observability surface: /metrics (Prometheus text format — per-shard
// queue depths, ops/batch, admission outcomes by reason, migration and
// rebalancer counters, per-tenant quota gauges, slack and wire latency
// summaries), /healthz (503 while draining), and /debug/pprof. -trace N
// samples 1 in N admissions into a bounded ring served by the wire
// protocol's Trace op (v4) and, with -slow, logs sampled admissions
// slower than the threshold to stderr. The rebalancer's logical clock
// defaults to a monotonic source advancing one tick per -tick of wall
// time, surfaced as the resd_logical_clock_ticks gauge.
//
//	resdsrv -obs :9090 -trace 64 -slow 5ms    # metrics + sampled tracing
//
// With -obs (or -flightdir) the server also arms its flight recorder
// (internal/flight): a bounded structured event journal fed by every
// subsystem, a watchdog judging shard-loop heartbeats against stall and
// queue budgets (resd_health_state, /healthz warnings), and — when
// -flightdir names a directory — on-anomaly diagnostic bundles
// (goroutines, heap, metrics, traces, journal, WAL state, config)
// served at /debug/flight and validated by `obscheck -flight`.
//
//	resdsrv -obs :9090 -flightdir /var/lib/resd/flight   # black box armed
//
// With -slo, the server arms an SLO engine (internal/slo) over the same
// observability surface: the JSON spec declares windowed objectives —
// deadline attainment (service-wide or per tenant), start-time slack at
// a percentile bound, admission success rate — and multi-window
// multi-burn-rate alert rules in the Google-SRE style (the default:
// 14.4× over 5m and 1h pages, 3× over 30m and 6h warns). The engine
// samples the service's cumulative counters on a fixed period — never
// touching a shard event loop — publishes the resd_slo_* metric
// families, journals every alert transition into the flight recorder,
// escalates /healthz to 200-with-warning while any rule fires, captures
// a rate-limited diagnostic bundle on page transitions, and streams
// per-objective states on the v5 Watch op's WatchSLO family.
//
//	resdsrv -obs :9090 -slo slo.json    # burn-rate alerting armed
//
// With -waldir, every shard keeps a write-ahead log of its admission
// decisions in that directory, group-committed with the shard's batch
// turn (one fsync per batch under -walsync batch), snapshotted every
// -snapevery records, and replayed on restart: the service comes back
// holding exactly the reservations — same IDs, same placements — it had
// durably admitted before the crash. While replay runs, /healthz serves
// 503; it flips to 200 only once the wire listener is accepting, so
// orchestrators never route to a server still rebuilding state.
//
//	resdsrv -waldir /var/lib/resd/wal -snapevery 8192   # durable shards
//
// Drive it with cmd/resload's -addr flag (add -tenants for a multi-tenant
// mix), the examples/wire and examples/tenant walkthroughs, or any
// reswire.Client. SIGINT/SIGTERM drain connections and shut the listener
// and service down cleanly, emitting one final stats line.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
	"repro/internal/slo"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/internal/workload"
)

func run() error {
	addr := flag.String("addr", "127.0.0.1:7433", "TCP listen address")
	shards := flag.Int("shards", 4, "cluster partitions")
	m := flag.Int("m", 64, "processors per partition")
	alpha := flag.Float64("alpha", 0.5, "α admission rule: ⌊α·m⌋ processors stay free per shard")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	placement := flag.String("placement", "least-loaded", "shard routing policy (first-fit, least-loaded, p2c, pressure)")
	batch := flag.Int("batch", 64, "max requests group-committed per event-loop turn")
	nres := flag.Int("nres", 0, "pre-existing reservations per shard (maintenance windows)")
	horizon := flag.Int64("horizon", 1<<20, "time horizon the -nres pre-reservations are drawn over")
	seed := flag.Uint64("seed", 1, "pre-reservation generator seed")
	quotas := flag.String("quotas", "", "tenant quota spec file (JSON); enables multi-tenant budgets")
	qhorizon := flag.Int64("qhorizon", 1<<20, "accounting horizon the -quotas budgets resolve against")
	rebalance := flag.Duration("rebalance", 0, "background shard-rebalancing interval (0 = disabled)")
	rebalthreshold := flag.Float64("rebalthreshold", resd.DefaultRebalanceThreshold, "imbalance score (0..1) that triggers a rebalancing round")
	rebalfreeze := flag.Int64("rebalfreeze", 0, "frozen window Δ: never migrate reservations starting within Δ ticks")
	rebalmoves := flag.Int("rebalmoves", resd.DefaultRebalanceMaxMoves, "max migrations per rebalancing round")
	obsAddr := flag.String("obs", "", "HTTP observability listen address (/metrics, /healthz, /debug/pprof; empty = disabled)")
	tick := flag.Duration("tick", time.Millisecond, "logical-clock granularity: one rebalancer tick per this much wall time")
	trace := flag.Int("trace", 0, "sample 1 in N admissions into the trace ring (0 = tracing disabled)")
	tracebuf := flag.Int("tracebuf", resd.DefaultTraceBuf, "admission trace ring capacity")
	slow := flag.Duration("slow", 0, "log sampled admissions slower than this to stderr (0 = disabled)")
	flightdir := flag.String("flightdir", "", "flight-recorder bundle directory: on-anomaly diagnostic bundles (empty = journal+watchdog only when -obs is set)")
	sloPath := flag.String("slo", "", "SLO spec file (JSON): windowed objectives + multi-window burn-rate alert rules (empty = disabled)")
	waldir := flag.String("waldir", "", "write-ahead-log directory: durable shards, replayed on restart (empty = in-memory only)")
	walsync := flag.String("walsync", "batch", "WAL commit durability: batch (one fsync per group commit) or none (OS flush only)")
	snapevery := flag.Int("snapevery", 8192, "WAL records per shard between snapshots (0 = never snapshot; the log grows unbounded)")
	flag.Parse()

	if err := cliflag.First(
		cliflag.Positive("shards", *shards),
		cliflag.Positive("m", *m),
		cliflag.Unit("alpha", *alpha),
		cliflag.Positive("batch", *batch),
		cliflag.NonNegative("nres", *nres),
	); err != nil {
		return err
	}
	if *horizon < 1 {
		return fmt.Errorf("%w: -horizon must be positive, got %d", cliflag.ErrFlag, *horizon)
	}
	if *qhorizon < 1 {
		return fmt.Errorf("%w: -qhorizon must be positive, got %d", cliflag.ErrFlag, *qhorizon)
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}
	if err := cliflag.RebalanceFlags(*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves); err != nil {
		return err
	}
	if *tick <= 0 {
		return fmt.Errorf("%w: -tick must be positive, got %v", cliflag.ErrFlag, *tick)
	}
	if err := cliflag.First(
		cliflag.NonNegative("trace", *trace),
		cliflag.Positive("tracebuf", *tracebuf),
	); err != nil {
		return err
	}
	if *slow < 0 {
		return fmt.Errorf("%w: -slow must be non-negative, got %v", cliflag.ErrFlag, *slow)
	}
	var walOpts *wal.Options
	if *waldir != "" {
		if err := cliflag.First(
			cliflag.WritableDir("waldir", *waldir),
			cliflag.NonNegative("snapevery", *snapevery),
		); err != nil {
			return err
		}
		if sm := wal.SyncMode(*walsync); sm != wal.SyncBatch && sm != wal.SyncNone {
			return fmt.Errorf("%w: -walsync must be %q or %q, got %q",
				cliflag.ErrFlag, wal.SyncBatch, wal.SyncNone, *walsync)
		}
		walOpts = &wal.Options{Dir: *waldir, Sync: wal.SyncMode(*walsync), SnapEvery: *snapevery}
	}
	reg, err := loadQuotas(*quotas, *shards, *m, *alpha, *qhorizon)
	if err != nil {
		return err
	}

	var pre []core.Reservation
	if *nres > 0 {
		pre = workload.ReservationStream(rng.New(*seed^0xBEEF), *m, *alpha, *nres, core.Time(*horizon))
	}

	// The rebalancer's logical clock: a monotonic source advancing one tick
	// per -tick of wall time, so -rebalfreeze windows mean wall-clock
	// durations instead of being pinned at a zero clock.
	startAt := time.Now()
	clock := func() core.Time { return core.Time(time.Since(startAt) / *tick) }

	var metrics *obs.Registry
	if *obsAddr != "" {
		metrics = obs.NewRegistry()
		obs.RegisterRuntime(metrics, "")
	}

	// The flight recorder (journal + watchdog) runs whenever observability
	// is on; -flightdir additionally arms on-anomaly diagnostic bundles.
	var rec *flight.Recorder
	if metrics != nil || *flightdir != "" {
		if *flightdir != "" {
			if err := cliflag.WritableDir("flightdir", *flightdir); err != nil {
				return err
			}
		}
		rec, err = flight.New(flight.Config{Registry: metrics, Dir: *flightdir})
		if err != nil {
			return err
		}
	}

	// The SLO engine evaluates the spec's objectives over the service's
	// cumulative counters: built here so it shares the metrics registry
	// and the flight recorder's journal, handed to resd.New below (which
	// binds the sources and starts the ticker). Page transitions capture
	// a rate-limited diagnostic bundle — the burn-rate alert is exactly
	// the moment an operator wants the black box's evidence.
	var eng *slo.Engine
	if *sloPath != "" {
		spec, err := slo.LoadSpec(*sloPath)
		if err != nil {
			return fmt.Errorf("%w: -slo: %w", cliflag.ErrFlag, err)
		}
		sloCfg := slo.Config{Spec: spec, Registry: metrics}
		if rec != nil {
			sloCfg.Journal = rec.Journal()
			sloCfg.OnAlert = sloAlertHook(rec)
		}
		eng, err = slo.New(sloCfg)
		if err != nil {
			return fmt.Errorf("%w: -slo: %w", cliflag.ErrFlag, err)
		}
	}

	var obsCfg *resd.ObsConfig
	if metrics != nil || *trace > 0 || rec != nil || eng != nil {
		obsCfg = &resd.ObsConfig{
			Registry: metrics, TraceSample: *trace, TraceBuf: *tracebuf,
			SlowThreshold: *slow,
			Flight:        rec,
			SLO:           eng,
		}
		if *slow > 0 {
			obsCfg.SlowLog = func(tr resd.TraceRecord) {
				fmt.Fprintln(os.Stderr, slowLine(tr))
			}
		}
	}

	// The observability listener comes up before the service so /healthz
	// is reachable — and answering 503 — for however long WAL replay
	// takes. ready flips only once the wire listener is accepting, and
	// the warn hook reports WAL damage once the service exists (replay
	// losses, shards whose log died at runtime) as a 200-with-warning
	// body: the process serves, but its durability is degraded.
	var ready atomic.Bool
	var warnSvc atomic.Pointer[resd.Service]
	if metrics != nil {
		oln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return err
		}
		warn := func() string {
			var parts []string
			if svc := warnSvc.Load(); svc != nil {
				if w := walWarning(svc); w != "" {
					parts = append(parts, w)
				}
			}
			if rec != nil && rec.State() != flight.Healthy {
				parts = append(parts, fmt.Sprintf("%s: %s", rec.State(), rec.Warning()))
			}
			if eng != nil {
				if w := eng.Warning(); w != "" {
					parts = append(parts, w)
				}
			}
			return strings.Join(parts, "; ")
		}
		mux := http.NewServeMux()
		if rec != nil {
			fh := rec.Handler()
			mux.Handle("/debug/flight", fh)
			mux.Handle("/debug/flight/", fh)
		}
		mux.Handle("/", obs.HandlerWithWarn(metrics, ready.Load, warn))
		hsrv := &http.Server{Handler: mux}
		go hsrv.Serve(oln)
		defer hsrv.Close()
		fmt.Printf("resdsrv: observability on http://%s/metrics (+/healthz, /debug/pprof, /debug/flight)\n", oln.Addr())
	}

	svc, err := resd.New(resd.Config{
		Shards: *shards, M: *m, Alpha: *alpha, Backend: *backend,
		Placement: *placement, Batch: *batch, Seed: *seed, Pre: pre,
		Quotas:         reg,
		RebalanceEvery: *rebalance, RebalanceThreshold: *rebalthreshold,
		RebalanceFreeze: core.Time(*rebalfreeze), RebalanceMaxMoves: *rebalmoves,
		RebalanceNow: clock,
		Obs:          obsCfg,
		WAL:          walOpts,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	warnSvc.Store(svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := reswire.NewServer(svc)
	srv.SetMetrics(reswire.NewMetrics(metrics, "server"))
	if rec != nil {
		srv.SetFlight(rec.Journal())
		rec.SetConfigInfo(map[string]any{
			"addr": *addr, "shards": *shards, "m": *m, "alpha": *alpha,
			"backend": *backend, "placement": *placement, "batch": *batch,
			"quotas": *quotas, "rebalance": (*rebalance).String(),
			"trace": *trace, "slow": (*slow).String(),
			"waldir": *waldir, "walsync": *walsync, "snapevery": *snapevery,
			"flightdir": *flightdir, "obs": *obsAddr, "slo": *sloPath,
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "resdsrv: %v, draining\n", s)
		ready.Store(false) // /healthz flips to 503 while connections drain
		srv.Close()        // stops the listener, closes conns, waits for handlers
	}()

	fmt.Printf("resdsrv: listening on %s — %d shards × m=%d (α=%.2f, floor %d), backend %s, placement %s\n",
		ln.Addr(), svc.Shards(), svc.M(), *alpha, svc.Floor(), *backend, svc.Placement())
	if reg != nil {
		fmt.Printf("resdsrv: quotas %s mode, capacity %d processor·ticks, %d declared tenants\n",
			reg.Mode(), reg.Capacity(), len(reg.Tenants()))
	}
	if *rebalance > 0 {
		fmt.Printf("resdsrv: rebalancer every %v (threshold %.2f, freeze %d ticks, <= %d moves/round)\n",
			*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves)
	}
	if *trace > 0 {
		fmt.Printf("resdsrv: tracing 1 in %d admissions (ring %d, slow threshold %v)\n",
			*trace, *tracebuf, *slow)
	}
	if rec != nil {
		where := "bundles disabled"
		if *flightdir != "" {
			where = "bundles in " + *flightdir
		}
		fmt.Printf("resdsrv: flight recorder armed (journal %d events, watchdog %v checks, %s)\n",
			flight.DefaultJournalSize, flight.DefaultCheckEvery, where)
	}
	if eng != nil {
		fmt.Printf("resdsrv: slo engine: %d objectives, evaluated every %v, budget window %v\n",
			len(eng.Objectives()), eng.Period(), eng.BudgetWindow())
	}
	if wi := svc.WALInfo(); wi.Enabled {
		fmt.Printf("resdsrv: wal %s (sync=%s, snapevery=%d): replayed %d records, %d snapshots in %v (moves %d committed / %d aborted, torn=%d corrupt=%d dropped=%dB)\n",
			wi.Dir, *walsync, *snapevery, wi.Records, wi.Snapshots, wi.Replay.Round(time.Microsecond),
			wi.MovesCommitted, wi.MovesAborted, wi.Torn, wi.Corrupt, wi.DroppedBytes)
	}
	ready.Store(true)
	err = srv.Serve(ln)
	// Connections are drained; flush the final accounting before exiting.
	fmt.Println(finalLine(svc))
	if err != reswire.ErrServerClosed {
		return err
	}
	return nil
}

// finalLine summarises a service's lifetime totals — the shutdown flush
// emitted after the last connection drains.
func finalLine(svc *resd.Service) string {
	var admitted, cancelled, rejected, deadline, quota, batches, ops uint64
	for _, st := range svc.Stats() {
		admitted += st.Admitted
		cancelled += st.Cancelled
		rejected += st.Rejected
		deadline += st.RejectedDeadline
		quota += st.RejectedQuota
		batches += st.Batches
		ops += st.Ops
	}
	return fmt.Sprintf("resdsrv: final: admitted=%d cancelled=%d rejected=%d (deadline=%d quota=%d) batches=%d ops=%d traces=%d",
		admitted, cancelled, rejected, deadline, quota, batches, ops, len(svc.Traces(0)))
}

// walWarning summarises the service's WAL damage for the /healthz warn
// hook: replay losses found at startup plus shards whose log has died at
// runtime. Empty when the WAL is healthy (or disabled).
func walWarning(svc *resd.Service) string {
	wi := svc.WALInfo()
	if !wi.Enabled {
		return ""
	}
	var parts []string
	if wi.Torn > 0 || wi.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("replay dropped %d torn + %d corrupt records (%dB)",
			wi.Torn, wi.Corrupt, wi.DroppedBytes))
	}
	failed := 0
	for _, w := range svc.WALStats() {
		if w.Failed > 0 {
			failed++
		}
	}
	if failed > 0 {
		parts = append(parts, fmt.Sprintf("%d shard log(s) stopped after write failures", failed))
	}
	return strings.Join(parts, "; ")
}

// sloAlertHook reacts to burn-rate transitions: every transition is
// already journaled by the engine; this hook adds the operator-facing
// stderr line and, on a transition into paging, a diagnostic bundle —
// rate-limited like watchdog captures so a flapping objective cannot
// fill the disk. Capture quietly refuses when -flightdir is unset.
func sloAlertHook(rec *flight.Recorder) func(objective string, from, to slo.Severity, burn float64) {
	var mu sync.Mutex
	var last time.Time
	return func(objective string, from, to slo.Severity, burn float64) {
		fmt.Fprintf(os.Stderr, "resdsrv: slo: %q %s -> %s (burn %.2fx)\n", objective, from, to, burn)
		if to != slo.SevPage {
			return
		}
		mu.Lock()
		limited := !last.IsZero() && time.Since(last) < flight.DefaultBundleMinInterval
		if !limited {
			last = time.Now()
		}
		mu.Unlock()
		if limited {
			return
		}
		if name, err := rec.Capture("slo page: " + objective); err == nil {
			fmt.Fprintf(os.Stderr, "resdsrv: slo: bundle %s captured for %q\n", name, objective)
		}
	}
}

// slowLine renders one slow sampled admission for the stderr log.
func slowLine(tr resd.TraceRecord) string {
	return fmt.Sprintf("resdsrv: slow request: seq=%d tenant=%q shard=%d outcome=%s total=%v (route=%v queue=%v batch=%v)",
		tr.Seq, tr.Tenant, tr.Shard, tr.Outcome, tr.Decision,
		tr.Route, tr.BatchStart-tr.Enqueue, tr.Decision-tr.BatchStart)
}

// loadQuotas builds the tenant registry from the -quotas spec file, with
// budgets resolved against the α-prefix area the flags describe:
// shards × (m − ⌊α·m⌋) × qhorizon. An empty path disables quotas; a
// spec that cannot bind anything (α=1 leaves no reservable prefix) is a
// flag error, caught here rather than surfacing as a registry panic.
func loadQuotas(path string, shards, m int, alpha float64, qhorizon int64) (*tenant.Registry, error) {
	if path == "" {
		return nil, nil
	}
	spec, err := tenant.LoadSpec(path)
	if err != nil {
		return nil, fmt.Errorf("%w: -quotas: %w", cliflag.ErrFlag, err)
	}
	capacity := tenant.PrefixCapacity(shards, m, alpha, qhorizon)
	if capacity < 1 {
		return nil, fmt.Errorf("%w: -quotas with α=%v leaves no reservable prefix to budget", cliflag.ErrFlag, alpha)
	}
	reg, err := tenant.New(capacity, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: -quotas: %w", cliflag.ErrFlag, err)
	}
	return reg, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resdsrv:", err)
		os.Exit(1)
	}
}
