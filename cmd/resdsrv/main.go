// Command resdsrv serves the internal/resd reservation-admission service
// over the reswire protocol: it builds a sharded service from flags,
// listens on a TCP address, and decodes wire frames straight into the
// shard event loops, so remote clients get the same α-rule and
// deadline-rejection semantics as in-process callers — over a socket.
//
// Usage:
//
//	resdsrv -addr :7433 -shards 8 -m 256 -alpha 0.5 -backend tree
//	resdsrv -addr 127.0.0.1:0 -placement p2c    # ephemeral port, printed
//
// Drive it with cmd/resload's -addr flag, the examples/wire walkthrough,
// or any reswire.Client. SIGINT/SIGTERM shut the listener and service
// down cleanly.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
	"repro/internal/workload"
)

func run() error {
	addr := flag.String("addr", "127.0.0.1:7433", "TCP listen address")
	shards := flag.Int("shards", 4, "cluster partitions")
	m := flag.Int("m", 64, "processors per partition")
	alpha := flag.Float64("alpha", 0.5, "α admission rule: ⌊α·m⌋ processors stay free per shard")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	placement := flag.String("placement", "least-loaded", "shard routing policy (first-fit, least-loaded, p2c)")
	batch := flag.Int("batch", 64, "max requests group-committed per event-loop turn")
	nres := flag.Int("nres", 0, "pre-existing reservations per shard (maintenance windows)")
	horizon := flag.Int64("horizon", 1<<20, "time horizon the -nres pre-reservations are drawn over")
	seed := flag.Uint64("seed", 1, "pre-reservation generator seed")
	flag.Parse()

	if err := cliflag.First(
		cliflag.Positive("shards", *shards),
		cliflag.Positive("m", *m),
		cliflag.Unit("alpha", *alpha),
		cliflag.Positive("batch", *batch),
		cliflag.NonNegative("nres", *nres),
	); err != nil {
		return err
	}
	if *horizon < 1 {
		return fmt.Errorf("%w: -horizon must be positive, got %d", cliflag.ErrFlag, *horizon)
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}

	var pre []core.Reservation
	if *nres > 0 {
		pre = workload.ReservationStream(rng.New(*seed^0xBEEF), *m, *alpha, *nres, core.Time(*horizon))
	}
	svc, err := resd.New(resd.Config{
		Shards: *shards, M: *m, Alpha: *alpha, Backend: *backend,
		Placement: *placement, Batch: *batch, Seed: *seed, Pre: pre,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := reswire.NewServer(svc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "resdsrv: %v, shutting down\n", s)
		srv.Close()
	}()

	fmt.Printf("resdsrv: listening on %s — %d shards × m=%d (α=%.2f, floor %d), backend %s, placement %s\n",
		ln.Addr(), svc.Shards(), svc.M(), *alpha, svc.Floor(), *backend, svc.Placement())
	if err := srv.Serve(ln); err != reswire.ErrServerClosed {
		return err
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resdsrv:", err)
		os.Exit(1)
	}
}
