// Command resdsrv serves the internal/resd reservation-admission service
// over the reswire protocol: it builds a sharded service from flags,
// listens on a TCP address, and decodes wire frames straight into the
// shard event loops, so remote clients get the same α-rule and
// deadline-rejection semantics as in-process callers — over a socket.
//
// Usage:
//
//	resdsrv -addr :7433 -shards 8 -m 256 -alpha 0.5 -backend tree
//	resdsrv -addr 127.0.0.1:0 -placement p2c    # ephemeral port, printed
//	resdsrv -quotas quotas.json -qhorizon 1000000   # multi-tenant budgets
//	resdsrv -shards 8 -rebalance 100ms -rebalfreeze 1000   # live rebalancing
//
// With -rebalance, a background rebalancer periodically scores the
// committed-area spread across shards and migrates admitted future
// reservations from hot partitions to idle ones (two-phase, conserving
// capacity and tenant quota at every instant). -rebalthreshold sets the
// imbalance score that triggers a round, -rebalfreeze pins reservations
// starting within that many ticks of the logical time origin, and
// -rebalmoves caps migrations per round. Remote clients see the effect in
// the Stats op's MigratedIn/MigratedOut counters (protocol v3). The
// "pressure" placement routes each Reserve by the requesting tenant's own
// per-shard footprint — quota-aware placement for skewed tenant mixes.
//
// With -quotas, the server partitions the reservable α-prefix between
// tenants: the JSON file declares the enforcement mode ("hard" rejects
// with REJECTED_QUOTA, "soft" reorders contended batches by fair share)
// and the group/tenant share hierarchy, and budgets resolve against
// shards × (m − ⌊α·m⌋) × -qhorizon processor·ticks. For example:
//
//	{
//	  "mode": "hard",
//	  "groups":  [{"name": "prod", "share": 0.75}],
//	  "tenants": [{"name": "etl", "group": "prod", "share": 0.5},
//	              {"name": "adhoc", "share": 0.1}]
//	}
//
// Drive it with cmd/resload's -addr flag (add -tenants for a multi-tenant
// mix), the examples/wire and examples/tenant walkthroughs, or any
// reswire.Client. SIGINT/SIGTERM shut the listener and service down
// cleanly.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
	"repro/internal/tenant"
	"repro/internal/workload"
)

func run() error {
	addr := flag.String("addr", "127.0.0.1:7433", "TCP listen address")
	shards := flag.Int("shards", 4, "cluster partitions")
	m := flag.Int("m", 64, "processors per partition")
	alpha := flag.Float64("alpha", 0.5, "α admission rule: ⌊α·m⌋ processors stay free per shard")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	placement := flag.String("placement", "least-loaded", "shard routing policy (first-fit, least-loaded, p2c, pressure)")
	batch := flag.Int("batch", 64, "max requests group-committed per event-loop turn")
	nres := flag.Int("nres", 0, "pre-existing reservations per shard (maintenance windows)")
	horizon := flag.Int64("horizon", 1<<20, "time horizon the -nres pre-reservations are drawn over")
	seed := flag.Uint64("seed", 1, "pre-reservation generator seed")
	quotas := flag.String("quotas", "", "tenant quota spec file (JSON); enables multi-tenant budgets")
	qhorizon := flag.Int64("qhorizon", 1<<20, "accounting horizon the -quotas budgets resolve against")
	rebalance := flag.Duration("rebalance", 0, "background shard-rebalancing interval (0 = disabled)")
	rebalthreshold := flag.Float64("rebalthreshold", resd.DefaultRebalanceThreshold, "imbalance score (0..1) that triggers a rebalancing round")
	rebalfreeze := flag.Int64("rebalfreeze", 0, "frozen window Δ: never migrate reservations starting within Δ ticks")
	rebalmoves := flag.Int("rebalmoves", resd.DefaultRebalanceMaxMoves, "max migrations per rebalancing round")
	flag.Parse()

	if err := cliflag.First(
		cliflag.Positive("shards", *shards),
		cliflag.Positive("m", *m),
		cliflag.Unit("alpha", *alpha),
		cliflag.Positive("batch", *batch),
		cliflag.NonNegative("nres", *nres),
	); err != nil {
		return err
	}
	if *horizon < 1 {
		return fmt.Errorf("%w: -horizon must be positive, got %d", cliflag.ErrFlag, *horizon)
	}
	if *qhorizon < 1 {
		return fmt.Errorf("%w: -qhorizon must be positive, got %d", cliflag.ErrFlag, *qhorizon)
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}
	if err := cliflag.RebalanceFlags(*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves); err != nil {
		return err
	}
	reg, err := loadQuotas(*quotas, *shards, *m, *alpha, *qhorizon)
	if err != nil {
		return err
	}

	var pre []core.Reservation
	if *nres > 0 {
		pre = workload.ReservationStream(rng.New(*seed^0xBEEF), *m, *alpha, *nres, core.Time(*horizon))
	}
	svc, err := resd.New(resd.Config{
		Shards: *shards, M: *m, Alpha: *alpha, Backend: *backend,
		Placement: *placement, Batch: *batch, Seed: *seed, Pre: pre,
		Quotas:         reg,
		RebalanceEvery: *rebalance, RebalanceThreshold: *rebalthreshold,
		RebalanceFreeze: core.Time(*rebalfreeze), RebalanceMaxMoves: *rebalmoves,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := reswire.NewServer(svc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "resdsrv: %v, shutting down\n", s)
		srv.Close()
	}()

	fmt.Printf("resdsrv: listening on %s — %d shards × m=%d (α=%.2f, floor %d), backend %s, placement %s\n",
		ln.Addr(), svc.Shards(), svc.M(), *alpha, svc.Floor(), *backend, svc.Placement())
	if reg != nil {
		fmt.Printf("resdsrv: quotas %s mode, capacity %d processor·ticks, %d declared tenants\n",
			reg.Mode(), reg.Capacity(), len(reg.Tenants()))
	}
	if *rebalance > 0 {
		fmt.Printf("resdsrv: rebalancer every %v (threshold %.2f, freeze %d ticks, <= %d moves/round)\n",
			*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves)
	}
	if err := srv.Serve(ln); err != reswire.ErrServerClosed {
		return err
	}
	return nil
}

// loadQuotas builds the tenant registry from the -quotas spec file, with
// budgets resolved against the α-prefix area the flags describe:
// shards × (m − ⌊α·m⌋) × qhorizon. An empty path disables quotas; a
// spec that cannot bind anything (α=1 leaves no reservable prefix) is a
// flag error, caught here rather than surfacing as a registry panic.
func loadQuotas(path string, shards, m int, alpha float64, qhorizon int64) (*tenant.Registry, error) {
	if path == "" {
		return nil, nil
	}
	spec, err := tenant.LoadSpec(path)
	if err != nil {
		return nil, fmt.Errorf("%w: -quotas: %w", cliflag.ErrFlag, err)
	}
	capacity := tenant.PrefixCapacity(shards, m, alpha, qhorizon)
	if capacity < 1 {
		return nil, fmt.Errorf("%w: -quotas with α=%v leaves no reservable prefix to budget", cliflag.ErrFlag, alpha)
	}
	reg, err := tenant.New(capacity, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: -quotas: %w", cliflag.ErrFlag, err)
	}
	return reg, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resdsrv:", err)
		os.Exit(1)
	}
}
