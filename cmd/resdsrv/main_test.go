package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cliflag"
	"repro/internal/resd"
	"repro/internal/tenant"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "quotas.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadQuotasResolvesCapacity(t *testing.T) {
	path := writeSpec(t, `{
		"mode": "soft",
		"groups":  [{"name": "prod", "share": 0.5}],
		"tenants": [{"name": "etl", "group": "prod", "share": 0.5}]
	}`)
	// 4 shards × (64 − ⌊0.25·64⌋) × 1000 = 4 × 48 × 1000.
	reg, err := loadQuotas(path, 4, 64, 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Capacity() != 4*48*1000 || reg.Mode() != tenant.Soft {
		t.Fatalf("capacity %d mode %v", reg.Capacity(), reg.Mode())
	}
	if u := reg.Usage("etl"); u.Budget != 4*48*1000/4 {
		t.Fatalf("etl budget = %d, want 48000 (0.5 of 0.5)", u.Budget)
	}
}

func TestLoadQuotasFlagErrors(t *testing.T) {
	if reg, err := loadQuotas("", 4, 64, 0.5, 1000); reg != nil || err != nil {
		t.Fatalf("empty path: reg=%v err=%v, want nil/nil", reg, err)
	}
	if _, err := loadQuotas(filepath.Join(t.TempDir(), "missing.json"), 4, 64, 0.5, 1000); !errors.Is(err, cliflag.ErrFlag) {
		t.Fatalf("missing file err = %v, want ErrFlag", err)
	}
	bad := writeSpec(t, `{"mode": "gentle"}`)
	if _, err := loadQuotas(bad, 4, 64, 0.5, 1000); !errors.Is(err, cliflag.ErrFlag) || !errors.Is(err, tenant.ErrConfig) {
		t.Fatalf("bad spec err = %v, want ErrFlag wrapping ErrConfig", err)
	}
	typo := writeSpec(t, `{"tennants": []}`)
	if _, err := loadQuotas(typo, 4, 64, 0.5, 1000); !errors.Is(err, cliflag.ErrFlag) {
		t.Fatalf("typo'd key err = %v, want ErrFlag", err)
	}
	ok := writeSpec(t, `{"mode": "hard"}`)
	if _, err := loadQuotas(ok, 4, 64, 1.0, 1000); !errors.Is(err, cliflag.ErrFlag) {
		t.Fatalf("α=1 err = %v, want ErrFlag (no reservable prefix)", err)
	}
}

// TestShutdownFlushLines drives a traced service and checks the final
// stats line — the one emitted after the drain — carries the lifetime
// totals, and that the slow-request line renders every stage.
func TestShutdownFlushLines(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 8, Obs: &resd.ObsConfig{TraceSample: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	r, err := svc.Admit(resd.Request{Ready: 0, Q: 4, Dur: 10, Deadline: resd.NoDeadline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Admit(resd.Request{Ready: 0, Q: 8, Dur: 10, Deadline: 0}); err == nil {
		t.Fatal("deadline rejection expected")
	}
	if err := svc.Cancel(r.ID); err != nil {
		t.Fatal(err)
	}
	line := finalLine(svc)
	for _, want := range []string{"admitted=1", "cancelled=1", "deadline=1", "traces=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("final line %q missing %q", line, want)
		}
	}

	traces := svc.Traces(1)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	slow := slowLine(traces[0])
	for _, want := range []string{"slow request", "outcome=rejected-deadline", "route=", "queue=", "batch="} {
		if !strings.Contains(slow, want) {
			t.Errorf("slow line %q missing %q", slow, want)
		}
	}
}

func TestRebalanceFlagsWiredThroughCliflag(t *testing.T) {
	// The shared validator (bounds pinned in cliflag's own tests) is what
	// this command runs its knobs through; spot-check the wiring accepts
	// the flag defaults and rejects a bad set.
	if err := cliflag.RebalanceFlags(0, 0.1, 0, 64); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := cliflag.RebalanceFlags(-time.Second, 0.1, 0, 64); !errors.Is(err, cliflag.ErrFlag) {
		t.Fatalf("negative interval err = %v, want ErrFlag", err)
	}
}
