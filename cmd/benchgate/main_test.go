package main

import (
	"fmt"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCapacityIndex/backend=array/n=1000-8         	  265486	      4508 ns/op
BenchmarkCapacityIndex/backend=tree/n=1000            	  388441	      3080 ns/op
BenchmarkCapacityIndex/backend=tree/n=10000-8         	  175087	      6587 ns/op
BenchmarkResdThroughput/backend=tree/shards=8-4       	   39044	      6569 ns/op	     320 B/op	       9 allocs/op
BenchmarkResdThroughput/backend=tree/shards=1         	   10000	     24906.5 ns/op	     512 B/op	      12.5 allocs/op
PASS
ok  	repro	5.701s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want measurement
	}{
		// -GOMAXPROCS suffix stripped, no allocs column:
		{"BenchmarkCapacityIndex/backend=array/n=1000", measurement{ns: 4508}},
		// no suffix (GOMAXPROCS=1):
		{"BenchmarkCapacityIndex/backend=tree/n=1000", measurement{ns: 3080}},
		{"BenchmarkCapacityIndex/backend=tree/n=10000", measurement{ns: 6587}},
		// B/op + allocs/op tail parsed:
		{"BenchmarkResdThroughput/backend=tree/shards=8", measurement{ns: 6569, allocs: 9, hasAllocs: true}},
		// fractional ns/op and allocs/op:
		{"BenchmarkResdThroughput/backend=tree/shards=1", measurement{ns: 24906.5, allocs: 12.5, hasAllocs: true}},
	}
	if len(got) != len(cases) {
		t.Fatalf("parsed %d entries, want %d: %v", len(got), len(cases), got)
	}
	for _, c := range cases {
		if got[c.name] != c.want {
			t.Errorf("%s = %+v, want %+v", c.name, got[c.name], c.want)
		}
	}
}

func TestParseBenchAverages(t *testing.T) {
	// -count N, in-bench interleaved rounds (Go tags the repeats #01,
	// #02, ...), or the same filter run several times repeat lines; the
	// gates want the mean under the base name, not whichever run came
	// last.
	const repeated = `
BenchmarkObsOverhead/obs=off 	  100	 7000 ns/op
BenchmarkObsOverhead/obs=off#01-4 	  100	 9000 ns/op
BenchmarkWireThroughput/clients=1/pipeline=on 	 100	 26000 ns/op	 512 B/op	 30 allocs/op
BenchmarkWireThroughput/clients=1/pipeline=on 	 100	 28000 ns/op	 512 B/op	 34 allocs/op
BenchmarkResdThroughput/backend=tree/shards=8 	 100	 6000 ns/op	 320 B/op	 9 allocs/op
BenchmarkResdThroughput/backend=tree/shards=8 	 100	 6200 ns/op
`
	got, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if m := got["BenchmarkObsOverhead/obs=off"]; m.ns != 8000 || m.hasAllocs {
		t.Errorf("obs=off = %+v, want mean 8000 ns/op without allocs", m)
	}
	if m := got["BenchmarkWireThroughput/clients=1/pipeline=on"]; m.ns != 27000 || !m.hasAllocs || m.allocs != 32 {
		t.Errorf("wire = %+v, want mean 27000 ns/op and 32 allocs/op", m)
	}
	// One repeat missing the allocs column poisons the alloc average: the
	// name keeps its ns mean but loses hasAllocs, and the alloc gate
	// reports it as missing rather than averaging apples with oranges.
	if m := got["BenchmarkResdThroughput/backend=tree/shards=8"]; m.ns != 6100 || m.hasAllocs {
		t.Errorf("resd = %+v, want mean 6100 ns/op without allocs", m)
	}
}

func TestGate(t *testing.T) {
	baselines := []baseline{
		{name: "BenchmarkCapacityIndex/backend=tree/n=1000", ns: 3000},
		{name: "BenchmarkCapacityIndex/backend=tree/n=10000", ns: 6500},
	}
	cases := []struct {
		name      string
		measured  map[string]measurement
		threshold float64
		wantOK    bool
		wantMark  string
	}{
		{
			name: "within threshold",
			measured: map[string]measurement{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  {ns: 5900},
				"BenchmarkCapacityIndex/backend=tree/n=10000": {ns: 6400},
			},
			threshold: 2, wantOK: true, wantMark: "ok",
		},
		{
			name: "regression fails",
			measured: map[string]measurement{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  {ns: 6100},
				"BenchmarkCapacityIndex/backend=tree/n=10000": {ns: 6400},
			},
			threshold: 2, wantOK: false, wantMark: "FAIL",
		},
		{
			name: "missing benchmark fails",
			measured: map[string]measurement{
				"BenchmarkCapacityIndex/backend=tree/n=1000": {ns: 3000},
			},
			threshold: 2, wantOK: false, wantMark: "MISSING",
		},
		{
			name: "tight threshold",
			measured: map[string]measurement{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  {ns: 3200},
				"BenchmarkCapacityIndex/backend=tree/n=10000": {ns: 6500},
			},
			threshold: 1.05, wantOK: false, wantMark: "FAIL",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			report, ok := gate(c.measured, baselines, c.threshold)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v\n%s", ok, c.wantOK, strings.Join(report, "\n"))
			}
			if len(report) != len(baselines) {
				t.Fatalf("report has %d lines, want %d", len(report), len(baselines))
			}
			joined := strings.Join(report, "\n")
			if !strings.Contains(joined, c.wantMark) {
				t.Fatalf("report lacks %q:\n%s", c.wantMark, joined)
			}
		})
	}
}

func TestGateAllocs(t *testing.T) {
	baselines := []baseline{{name: "BenchmarkWireThroughput/clients=1/pipeline=on", ns: 26000, allocs: 20}}
	run := func(m measurement) ([]string, bool) {
		return gate(map[string]measurement{"BenchmarkWireThroughput/clients=1/pipeline=on": m},
			baselines, 2)
	}
	if report, ok := run(measurement{ns: 26000, allocs: 21, hasAllocs: true}); !ok {
		t.Fatalf("within alloc threshold must pass:\n%s", strings.Join(report, "\n"))
	}
	if report, ok := run(measurement{ns: 26000, allocs: 41, hasAllocs: true}); ok || !strings.Contains(strings.Join(report, "\n"), "FAIL") {
		t.Fatalf("alloc regression past threshold must fail:\n%s", strings.Join(report, "\n"))
	}
	// A benchmark that stopped reporting allocations cannot pass the gate
	// vacuously.
	if report, ok := run(measurement{ns: 26000}); ok || !strings.Contains(strings.Join(report, "\n"), "MISSING") {
		t.Fatalf("missing allocs column must fail:\n%s", strings.Join(report, "\n"))
	}
	// Near-zero baselines get a +2 absolute floor so one stray allocation
	// cannot flap the gate.
	tiny := []baseline{{name: "BenchmarkWireThroughput/clients=1/pipeline=on", ns: 26000, allocs: 1}}
	report, ok := gate(map[string]measurement{
		"BenchmarkWireThroughput/clients=1/pipeline=on": {ns: 26000, allocs: 3, hasAllocs: true},
	}, tiny, 2)
	if !ok {
		t.Fatalf("tiny baseline within the +2 floor must pass:\n%s", strings.Join(report, "\n"))
	}
}

func TestBaselineLoaders(t *testing.T) {
	// Loaded from the real recorded files at the repository root, so a
	// schema drift in either JSON breaks this test before it breaks CI.
	rs, err := restreeBaselines("../../BENCH_restree.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || !strings.Contains(rs[0].name, "backend=tree/n=1000") || rs[0].ns <= 0 {
		t.Fatalf("restree baselines: %+v", rs)
	}
	rd, err := resdBaselines("../../BENCH_resd.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rd) != 4 || !strings.Contains(rd[3].name, "backend=tree/shards=8") || rd[3].ns <= 0 {
		t.Fatalf("resd baselines: %+v", rd)
	}
	for _, b := range rd {
		if strings.Contains(b.name, "backend=array") {
			t.Fatalf("array rows must be skipped: %+v", b)
		}
		if b.allocs <= 0 {
			t.Fatalf("resd baseline without recorded allocs_per_op: %+v", b)
		}
	}
	rw, err := reswireBaselines("../../BENCH_reswire.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rw) != 6 {
		t.Fatalf("reswire baselines: want 6 rows (3 client counts × on/off), got %+v", rw)
	}
	wantNames := map[string]bool{}
	for _, clients := range []int{1, 4, 16} {
		for _, p := range []string{"off", "on"} {
			wantNames[fmt.Sprintf("BenchmarkWireThroughput/clients=%d/pipeline=%s", clients, p)] = true
		}
	}
	for _, b := range rw {
		if !wantNames[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected reswire baseline: %+v", b)
		}
		if b.allocs <= 0 {
			t.Fatalf("reswire baseline without recorded allocs_per_op: %+v", b)
		}
	}
	tn, err := tenantBaselines("../../BENCH_tenant.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(tn) != 6 {
		t.Fatalf("tenant baselines: want 6 rows (3 tenant counts × hard/soft), got %+v", tn)
	}
	wantTenant := map[string]bool{}
	for _, tenants := range []int{1, 4, 16} {
		for _, mode := range []string{"hard", "soft"} {
			wantTenant[fmt.Sprintf("BenchmarkTenantThroughput/tenants=%d/mode=%s", tenants, mode)] = true
		}
	}
	for _, b := range tn {
		if !wantTenant[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected tenant baseline: %+v", b)
		}
	}
	rb, err := rebalBaselines("../../BENCH_rebal.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != 4 {
		t.Fatalf("rebal baselines: want 4 rows (2 backends × off/on), got %+v", rb)
	}
	wantRebal := map[string]bool{}
	for _, backend := range []string{"array", "tree"} {
		for _, mode := range []string{"off", "on"} {
			wantRebal[fmt.Sprintf("BenchmarkRebalance/backend=%s/rebalance=%s", backend, mode)] = true
		}
	}
	for _, b := range rb {
		if !wantRebal[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected rebal baseline: %+v", b)
		}
	}
	ob, budget, err := obsBaselines("../../BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(ob) != 5 || ob[0].name != "BenchmarkObsOverhead/obs=off" ||
		ob[1].name != "BenchmarkObsOverhead/obs=on" ||
		ob[2].name != "BenchmarkObsOverhead/obs=watch" ||
		ob[3].name != "BenchmarkObsOverhead/obs=flight" ||
		ob[4].name != "BenchmarkObsOverhead/obs=slo" || ob[0].ns <= 0 {
		t.Fatalf("obs baselines: %+v", ob)
	}
	if budget <= 1 || budget > 1.1 {
		t.Fatalf("obs max_overhead = %v, want a tight budget in (1, 1.1]", budget)
	}
	wl, walBudget, err := walBaselines("../../BENCH_wal.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) != 2 || wl[0].name != "BenchmarkWALOverhead/wal=off" || wl[1].name != "BenchmarkWALOverhead/wal=buffered" || wl[0].ns <= 0 {
		t.Fatalf("wal baselines: %+v (the fsync row must be skipped)", wl)
	}
	if walBudget <= 1 || walBudget > 2 {
		t.Fatalf("wal max_overhead = %v, want a budget in (1, 2]", walBudget)
	}
}

func TestGateObsRatio(t *testing.T) {
	within := map[string]measurement{
		"BenchmarkObsOverhead/obs=off":    {ns: 7000},
		"BenchmarkObsOverhead/obs=on":     {ns: 7200},
		"BenchmarkObsOverhead/obs=watch":  {ns: 7300},
		"BenchmarkObsOverhead/obs=flight": {ns: 7250},
		"BenchmarkObsOverhead/obs=slo":    {ns: 7280},
	}
	report, ok := gateObsRatio(within, 1.05)
	if !ok || len(report) != 4 {
		t.Fatalf("within budget: ok=%v report=%v", ok, report)
	}
	for i, line := range report {
		if !strings.Contains(line, "ok") {
			t.Fatalf("within budget: report[%d] = %q, want ok", i, line)
		}
	}
	over := map[string]measurement{
		"BenchmarkObsOverhead/obs=off": {ns: 7000},
		"BenchmarkObsOverhead/obs=on":  {ns: 7800},
	}
	if report, ok := gateObsRatio(over, 1.05); ok || !strings.Contains(report[0], "FAIL") {
		t.Fatalf("over budget: ok=%v report=%v", ok, report)
	}
	// A watcher that taxes the admission path past the budget fails even
	// when the plain instrumented run is fine.
	watchOver := map[string]measurement{
		"BenchmarkObsOverhead/obs=off":   {ns: 7000},
		"BenchmarkObsOverhead/obs=on":    {ns: 7200},
		"BenchmarkObsOverhead/obs=watch": {ns: 8000},
	}
	if report, ok := gateObsRatio(watchOver, 1.05); ok || !strings.Contains(strings.Join(report, "\n"), "FAIL") {
		t.Fatalf("watch over budget: ok=%v report=%v", ok, report)
	}
	// The armed flight recorder is held to the same budget.
	flightOver := map[string]measurement{
		"BenchmarkObsOverhead/obs=off":    {ns: 7000},
		"BenchmarkObsOverhead/obs=on":     {ns: 7200},
		"BenchmarkObsOverhead/obs=flight": {ns: 8000},
	}
	if report, ok := gateObsRatio(flightOver, 1.05); ok || !strings.Contains(strings.Join(report, "\n"), "FAIL") {
		t.Fatalf("flight over budget: ok=%v report=%v", ok, report)
	}
	// So is a live SLO engine.
	sloOver := map[string]measurement{
		"BenchmarkObsOverhead/obs=off": {ns: 7000},
		"BenchmarkObsOverhead/obs=on":  {ns: 7200},
		"BenchmarkObsOverhead/obs=slo": {ns: 8000},
	}
	if report, ok := gateObsRatio(sloOver, 1.05); ok || !strings.Contains(strings.Join(report, "\n"), "FAIL") {
		t.Fatalf("slo over budget: ok=%v report=%v", ok, report)
	}
	// Missing sub-benchmarks are the baseline gate's finding, not a second
	// failure here.
	if report, ok := gateObsRatio(map[string]measurement{}, 1.05); !ok || report != nil {
		t.Fatalf("missing pair: ok=%v report=%v", ok, report)
	}
}

func TestGateWalRatio(t *testing.T) {
	within := map[string]measurement{
		"BenchmarkWALOverhead/wal=off":      {ns: 7000},
		"BenchmarkWALOverhead/wal=buffered": {ns: 8000},
		"BenchmarkWALOverhead/wal=fsync":    {ns: 30000},
	}
	report, ok := gateWalRatio(within, 1.5)
	if !ok || len(report) != 2 || !strings.Contains(report[1], "ok") {
		t.Fatalf("within budget: ok=%v report=%v", ok, report)
	}
	// The fsync figure is reported but never gated, no matter how slow.
	within["BenchmarkWALOverhead/wal=fsync"] = measurement{ns: 9e9}
	if _, ok := gateWalRatio(within, 1.5); !ok {
		t.Fatal("a slow fsync row must not fail the gate")
	}
	over := map[string]measurement{
		"BenchmarkWALOverhead/wal=off":      {ns: 7000},
		"BenchmarkWALOverhead/wal=buffered": {ns: 12000},
		"BenchmarkWALOverhead/wal=fsync":    {ns: 30000},
	}
	if report, ok := gateWalRatio(over, 1.5); ok || !strings.Contains(report[1], "FAIL") {
		t.Fatalf("over budget: ok=%v report=%v", ok, report)
	}
	// Unlike the obs pair, a missing fsync row IS this gate's finding:
	// nothing else checks that the durable path ran.
	noFsync := map[string]measurement{
		"BenchmarkWALOverhead/wal=off":      {ns: 7000},
		"BenchmarkWALOverhead/wal=buffered": {ns: 8000},
	}
	if report, ok := gateWalRatio(noFsync, 1.5); ok || !strings.Contains(report[0], "MISSING") {
		t.Fatalf("missing fsync row: ok=%v report=%v", ok, report)
	}
	// Missing off/buffered rows are the baseline gate's finding.
	fsyncOnly := map[string]measurement{"BenchmarkWALOverhead/wal=fsync": {ns: 30000}}
	if _, ok := gateWalRatio(fsyncOnly, 1.5); !ok {
		t.Fatal("missing off/buffered pair is the baseline gate's finding, not this one's")
	}
}
