package main

import (
	"fmt"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCapacityIndex/backend=array/n=1000-8         	  265486	      4508 ns/op
BenchmarkCapacityIndex/backend=tree/n=1000            	  388441	      3080 ns/op
BenchmarkCapacityIndex/backend=tree/n=10000-8         	  175087	      6587 ns/op
BenchmarkResdThroughput/backend=tree/shards=8-4       	   39044	      6569 ns/op
BenchmarkResdThroughput/backend=tree/shards=1         	   10000	     24906.5 ns/op
PASS
ok  	repro	5.701s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ns   float64
	}{
		// -GOMAXPROCS suffix stripped:
		{"BenchmarkCapacityIndex/backend=array/n=1000", 4508},
		// no suffix (GOMAXPROCS=1):
		{"BenchmarkCapacityIndex/backend=tree/n=1000", 3080},
		{"BenchmarkCapacityIndex/backend=tree/n=10000", 6587},
		{"BenchmarkResdThroughput/backend=tree/shards=8", 6569},
		// fractional ns/op:
		{"BenchmarkResdThroughput/backend=tree/shards=1", 24906.5},
	}
	if len(got) != len(cases) {
		t.Fatalf("parsed %d entries, want %d: %v", len(got), len(cases), got)
	}
	for _, c := range cases {
		if got[c.name] != c.ns {
			t.Errorf("%s = %v, want %v", c.name, got[c.name], c.ns)
		}
	}
}

func TestGate(t *testing.T) {
	baselines := []baseline{
		{"BenchmarkCapacityIndex/backend=tree/n=1000", 3000},
		{"BenchmarkCapacityIndex/backend=tree/n=10000", 6500},
	}
	cases := []struct {
		name      string
		measured  map[string]float64
		threshold float64
		wantOK    bool
		wantMark  string
	}{
		{
			name: "within threshold",
			measured: map[string]float64{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  5900,
				"BenchmarkCapacityIndex/backend=tree/n=10000": 6400,
			},
			threshold: 2, wantOK: true, wantMark: "ok",
		},
		{
			name: "regression fails",
			measured: map[string]float64{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  6100,
				"BenchmarkCapacityIndex/backend=tree/n=10000": 6400,
			},
			threshold: 2, wantOK: false, wantMark: "FAIL",
		},
		{
			name: "missing benchmark fails",
			measured: map[string]float64{
				"BenchmarkCapacityIndex/backend=tree/n=1000": 3000,
			},
			threshold: 2, wantOK: false, wantMark: "MISSING",
		},
		{
			name: "tight threshold",
			measured: map[string]float64{
				"BenchmarkCapacityIndex/backend=tree/n=1000":  3200,
				"BenchmarkCapacityIndex/backend=tree/n=10000": 6500,
			},
			threshold: 1.05, wantOK: false, wantMark: "FAIL",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			report, ok := gate(c.measured, baselines, c.threshold)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v\n%s", ok, c.wantOK, strings.Join(report, "\n"))
			}
			if len(report) != len(baselines) {
				t.Fatalf("report has %d lines, want %d", len(report), len(baselines))
			}
			joined := strings.Join(report, "\n")
			if !strings.Contains(joined, c.wantMark) {
				t.Fatalf("report lacks %q:\n%s", c.wantMark, joined)
			}
		})
	}
}

func TestBaselineLoaders(t *testing.T) {
	// Loaded from the real recorded files at the repository root, so a
	// schema drift in either JSON breaks this test before it breaks CI.
	rs, err := restreeBaselines("../../BENCH_restree.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || !strings.Contains(rs[0].name, "backend=tree/n=1000") || rs[0].ns <= 0 {
		t.Fatalf("restree baselines: %+v", rs)
	}
	rd, err := resdBaselines("../../BENCH_resd.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rd) != 4 || !strings.Contains(rd[3].name, "backend=tree/shards=8") || rd[3].ns <= 0 {
		t.Fatalf("resd baselines: %+v", rd)
	}
	for _, b := range rd {
		if strings.Contains(b.name, "backend=array") {
			t.Fatalf("array rows must be skipped: %+v", b)
		}
	}
	rw, err := reswireBaselines("../../BENCH_reswire.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rw) != 6 {
		t.Fatalf("reswire baselines: want 6 rows (3 client counts × on/off), got %+v", rw)
	}
	wantNames := map[string]bool{}
	for _, clients := range []int{1, 4, 16} {
		for _, p := range []string{"off", "on"} {
			wantNames[fmt.Sprintf("BenchmarkWireThroughput/clients=%d/pipeline=%s", clients, p)] = true
		}
	}
	for _, b := range rw {
		if !wantNames[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected reswire baseline: %+v", b)
		}
	}
	tn, err := tenantBaselines("../../BENCH_tenant.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(tn) != 6 {
		t.Fatalf("tenant baselines: want 6 rows (3 tenant counts × hard/soft), got %+v", tn)
	}
	wantTenant := map[string]bool{}
	for _, tenants := range []int{1, 4, 16} {
		for _, mode := range []string{"hard", "soft"} {
			wantTenant[fmt.Sprintf("BenchmarkTenantThroughput/tenants=%d/mode=%s", tenants, mode)] = true
		}
	}
	for _, b := range tn {
		if !wantTenant[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected tenant baseline: %+v", b)
		}
	}
	rb, err := rebalBaselines("../../BENCH_rebal.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != 4 {
		t.Fatalf("rebal baselines: want 4 rows (2 backends × off/on), got %+v", rb)
	}
	wantRebal := map[string]bool{}
	for _, backend := range []string{"array", "tree"} {
		for _, mode := range []string{"off", "on"} {
			wantRebal[fmt.Sprintf("BenchmarkRebalance/backend=%s/rebalance=%s", backend, mode)] = true
		}
	}
	for _, b := range rb {
		if !wantRebal[b.name] || b.ns <= 0 {
			t.Fatalf("unexpected rebal baseline: %+v", b)
		}
	}
	ob, budget, err := obsBaselines("../../BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(ob) != 2 || ob[0].name != "BenchmarkObsOverhead/obs=off" || ob[1].name != "BenchmarkObsOverhead/obs=on" || ob[0].ns <= 0 {
		t.Fatalf("obs baselines: %+v", ob)
	}
	if budget <= 1 || budget > 1.1 {
		t.Fatalf("obs max_overhead = %v, want a tight budget in (1, 1.1]", budget)
	}
	wl, walBudget, err := walBaselines("../../BENCH_wal.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) != 2 || wl[0].name != "BenchmarkWALOverhead/wal=off" || wl[1].name != "BenchmarkWALOverhead/wal=buffered" || wl[0].ns <= 0 {
		t.Fatalf("wal baselines: %+v (the fsync row must be skipped)", wl)
	}
	if walBudget <= 1 || walBudget > 2 {
		t.Fatalf("wal max_overhead = %v, want a budget in (1, 2]", walBudget)
	}
}

func TestGateObsRatio(t *testing.T) {
	within := map[string]float64{
		"BenchmarkObsOverhead/obs=off": 7000,
		"BenchmarkObsOverhead/obs=on":  7200,
	}
	if report, ok := gateObsRatio(within, 1.05); !ok || !strings.Contains(report[0], "ok") {
		t.Fatalf("within budget: ok=%v report=%v", ok, report)
	}
	over := map[string]float64{
		"BenchmarkObsOverhead/obs=off": 7000,
		"BenchmarkObsOverhead/obs=on":  7800,
	}
	if report, ok := gateObsRatio(over, 1.05); ok || !strings.Contains(report[0], "FAIL") {
		t.Fatalf("over budget: ok=%v report=%v", ok, report)
	}
	// Missing sub-benchmarks are the baseline gate's finding, not a second
	// failure here.
	if report, ok := gateObsRatio(map[string]float64{}, 1.05); !ok || report != nil {
		t.Fatalf("missing pair: ok=%v report=%v", ok, report)
	}
}

func TestGateWalRatio(t *testing.T) {
	within := map[string]float64{
		"BenchmarkWALOverhead/wal=off":      7000,
		"BenchmarkWALOverhead/wal=buffered": 8000,
		"BenchmarkWALOverhead/wal=fsync":    30000,
	}
	report, ok := gateWalRatio(within, 1.5)
	if !ok || len(report) != 2 || !strings.Contains(report[1], "ok") {
		t.Fatalf("within budget: ok=%v report=%v", ok, report)
	}
	// The fsync figure is reported but never gated, no matter how slow.
	within["BenchmarkWALOverhead/wal=fsync"] = 9e9
	if _, ok := gateWalRatio(within, 1.5); !ok {
		t.Fatal("a slow fsync row must not fail the gate")
	}
	over := map[string]float64{
		"BenchmarkWALOverhead/wal=off":      7000,
		"BenchmarkWALOverhead/wal=buffered": 12000,
		"BenchmarkWALOverhead/wal=fsync":    30000,
	}
	if report, ok := gateWalRatio(over, 1.5); ok || !strings.Contains(report[1], "FAIL") {
		t.Fatalf("over budget: ok=%v report=%v", ok, report)
	}
	// Unlike the obs pair, a missing fsync row IS this gate's finding:
	// nothing else checks that the durable path ran.
	noFsync := map[string]float64{
		"BenchmarkWALOverhead/wal=off":      7000,
		"BenchmarkWALOverhead/wal=buffered": 8000,
	}
	if report, ok := gateWalRatio(noFsync, 1.5); ok || !strings.Contains(report[0], "MISSING") {
		t.Fatalf("missing fsync row: ok=%v report=%v", ok, report)
	}
	// Missing off/buffered rows are the baseline gate's finding.
	fsyncOnly := map[string]float64{"BenchmarkWALOverhead/wal=fsync": 30000}
	if _, ok := gateWalRatio(fsyncOnly, 1.5); !ok {
		t.Fatal("missing off/buffered pair is the baseline gate's finding, not this one's")
	}
}
