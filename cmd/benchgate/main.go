// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output and compares the recorded hot paths against their
// baselines — the tree-backend figures in BENCH_restree.json and
// BENCH_resd.json, the wire-throughput matrix in BENCH_reswire.json, the
// multi-tenant quota matrix in BENCH_tenant.json, the rebalancing off/on
// matrix in BENCH_rebal.json, the instrumentation off/on pair in
// BENCH_obs.json, and the durability off/buffered/fsync triple in
// BENCH_wal.json — failing (exit 1) when any measured figure exceeds its
// recorded baseline by more than the threshold factor.
//
// Usage:
//
//	go test -run '^$' -bench 'CapacityIndex|ResdThroughput|WireThroughput|TenantThroughput|Rebalance|ObsOverhead|WALOverhead' \
//	    -benchtime=0.2s . | tee bench.out
//	benchgate -bench bench.out -restree BENCH_restree.json -resd BENCH_resd.json \
//	    -reswire BENCH_reswire.json -tenant BENCH_tenant.json -rebal BENCH_rebal.json \
//	    -obs BENCH_obs.json -wal BENCH_wal.json -threshold 2
//
// Baselines that record allocs_per_op (the wire and resd throughput
// matrices) are additionally held to that allocation count at the same
// threshold: allocation regressions are machine-independent and often
// invisible to the ns gate on a fast runner.
//
// The -obs baseline carries a second, much tighter gate on top of the
// absolute figures: the measured on/off and watch/off ratios — numbers
// from the same run, immune to machine speed — must stay within the
// max_overhead budget recorded in BENCH_obs.json (the "observability
// costs <5%, even while a live Watch subscriber streams telemetry"
// claim).
//
// The -wal baseline works the same way: the wal=off and wal=buffered rows
// are gated absolutely, and the measured buffered/off ratio is held to the
// max_overhead budget in BENCH_wal.json (the "group commit, not one
// syscall per admission" claim). The wal=fsync row must be present in the
// bench output but is never gated on speed — fsync latency is a property
// of the CI machine's storage, not of this code.
//
// The threshold is deliberately generous (default 2×): the gate exists to
// catch algorithmic regressions — an accidental O(n) scan reintroduced on
// the tree path shows up as 10×+ — not to police machine-to-machine
// noise. A missing benchmark is also a failure, so the gate cannot pass
// vacuously when a rename silently empties the -bench filter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkCapacityIndex/backend=tree/n=10000-8   175087   6587 ns/op
//	BenchmarkWireThroughput/clients=1/pipeline=off  45872   26884 ns/op   512 B/op   12 allocs/op
//
// The trailing -N (GOMAXPROCS) is optional: Go omits it when procs is 1.
// A #NN tag before it is the suffix Go appends when a benchmark runs the
// same sub-benchmark name several times (BenchmarkObsOverhead's
// interleaved rounds do); it is stripped, so the rounds average under
// the base name. The B/op + allocs/op tail appears when the benchmark
// calls b.ReportAllocs (or the run passes -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:#\d+)?(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// measurement is one parsed benchmark result. allocs is only meaningful
// when hasAllocs is set — a benchmark without ReportAllocs prints no
// allocs/op column at all, which is different from measuring zero.
type measurement struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// parseBench extracts name → measurement from `go test -bench` output.
// Names keep their sub-benchmark path but drop the -GOMAXPROCS and #NN
// repeat suffixes. Repeated lines for the same name (-count N, in-bench
// interleaved rounds, or the same filter run several times) are averaged: the ratio gates divide figures measured
// minutes apart, and averaging over repeated interleaved runs is what
// keeps a drifting CI machine from minting fake overhead on whichever
// sub-benchmark ran last. hasAllocs holds only if every repeat reported
// the allocs column.
func parseBench(r io.Reader) (map[string]measurement, error) {
	type acc struct {
		ns, allocs float64
		n, nAllocs int
	}
	sums := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		a := sums[m[1]]
		if a == nil {
			a = &acc{}
			sums[m[1]] = a
			order = append(order, m[1])
		}
		a.ns += ns
		a.n++
		if m[4] != "" {
			allocs, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad allocs/op in %q: %w", sc.Text(), err)
			}
			a.allocs += allocs
			a.nAllocs++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]measurement, len(sums))
	for _, name := range order {
		a := sums[name]
		meas := measurement{ns: a.ns / float64(a.n)}
		if a.nAllocs == a.n {
			meas.allocs, meas.hasAllocs = a.allocs/float64(a.nAllocs), true
		}
		out[name] = meas
	}
	return out, nil
}

// baseline is one expected benchmark with its recorded figures. allocs
// is gated only when positive: an alloc regression (a buffer suddenly
// escaping per request, a pool dropped from a hot path) is as real as a
// speed one but invisible to the ns gate on a fast machine, so rows that
// record allocs_per_op get both checks.
type baseline struct {
	name   string
	ns     float64
	allocs float64
}

// restreeBaselines loads the tree-backend rows of BENCH_restree.json as
// expectations on BenchmarkCapacityIndex sub-benchmarks.
func restreeBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Reservations int     `json:"reservations"`
			TreeNsPerOp  float64 `json:"tree_ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkCapacityIndex/backend=tree/n=%d", r.Reservations),
			ns:   r.TreeNsPerOp,
		})
	}
	return out, nil
}

// resdBaselines loads the tree-backend rows of BENCH_resd.json as
// expectations on BenchmarkResdThroughput sub-benchmarks.
func resdBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Backend     string  `json:"backend"`
			Shards      int     `json:"shards"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		if r.Backend != "tree" {
			continue
		}
		out = append(out, baseline{
			name:   fmt.Sprintf("BenchmarkResdThroughput/backend=tree/shards=%d", r.Shards),
			ns:     r.NsPerOp,
			allocs: r.AllocsPerOp,
		})
	}
	return out, nil
}

// reswireBaselines loads BENCH_reswire.json rows as expectations on
// BenchmarkWireThroughput sub-benchmarks (both pipelining settings: a
// regression in the unpipelined RPC path is as real as one in the
// pipelined path).
func reswireBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Clients     int     `json:"clients"`
			Pipeline    string  `json:"pipeline"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name:   fmt.Sprintf("BenchmarkWireThroughput/clients=%d/pipeline=%s", r.Clients, r.Pipeline),
			ns:     r.NsPerOp,
			allocs: r.AllocsPerOp,
		})
	}
	return out, nil
}

// tenantBaselines loads BENCH_tenant.json rows as expectations on
// BenchmarkTenantThroughput sub-benchmarks (both enforcement modes across
// the tenant axis: a lock sneaking onto the lock-free acquire path or a
// per-tenant scan shows up at every row).
func tenantBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Tenants int     `json:"tenants"`
			Mode    string  `json:"mode"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkTenantThroughput/tenants=%d/mode=%s", r.Tenants, r.Mode),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// rebalBaselines loads BENCH_rebal.json rows as expectations on
// BenchmarkRebalance sub-benchmarks (both rebalancer settings on both
// backends: a regression in the hot-shard baseline is as real as one in
// the migrated steady state, and a balancer gone thrash-happy shows up
// as the on axis blowing past its recorded figure).
func rebalBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Backend   string  `json:"backend"`
			Rebalance string  `json:"rebalance"`
			NsPerOp   float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkRebalance/backend=%s/rebalance=%s", r.Backend, r.Rebalance),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// obsBaselines loads BENCH_obs.json: each off/on row becomes an
// expectation on a BenchmarkObsOverhead sub-benchmark, and max_overhead
// is the instrumentation budget the ratio gate enforces on the measured
// pair (the on/off ratio of one run is immune to machine speed, so it is
// held to its own, much tighter bound than the absolute threshold).
func obsBaselines(path string) ([]baseline, float64, error) {
	var doc struct {
		Rows []struct {
			Obs     string  `json:"obs"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
		MaxOverhead float64 `json:"max_overhead"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, 0, err
	}
	if doc.MaxOverhead <= 1 {
		return nil, 0, fmt.Errorf("benchgate: %s: max_overhead must be > 1, got %v", path, doc.MaxOverhead)
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkObsOverhead/obs=%s", r.Obs),
			ns:   r.NsPerOp,
		})
	}
	return out, doc.MaxOverhead, nil
}

// gateObsRatio checks the instrumentation-cost budget: the measured
// obs=on figure may exceed the measured obs=off figure by at most
// maxOverhead, and so may obs=watch — the same workload with a live
// Watch subscriber streaming telemetry, which must ride the published
// atomics rather than tax the admission path — obs=flight, the
// same workload with the flight recorder's journal, per-turn
// heartbeats, and watchdog armed — and obs=slo, the same workload with
// the SLO engine counting admission decisions and sampling cumulative
// counters on its own ticker. Missing sub-benchmarks are already
// reported by the baseline gate, so this adds nothing for them.
func gateObsRatio(measured map[string]measurement, maxOverhead float64) (report []string, ok bool) {
	off, okOff := measured["BenchmarkObsOverhead/obs=off"]
	if !okOff {
		return nil, true
	}
	ok = true
	for _, variant := range []string{"on", "watch", "flight", "slo"} {
		got, found := measured["BenchmarkObsOverhead/obs="+variant]
		if !found {
			continue
		}
		ratio := got.ns / off.ns
		if ratio > maxOverhead {
			report = append(report, fmt.Sprintf("FAIL    obs overhead: %s/off = %.0f/%.0f ns/op = %.3f× > %.2f× budget",
				variant, got.ns, off.ns, ratio, maxOverhead))
			ok = false
			continue
		}
		report = append(report, fmt.Sprintf("ok      obs overhead: %s/off = %.0f/%.0f ns/op = %.3f× (budget %.2f×)",
			variant, got.ns, off.ns, ratio, maxOverhead))
	}
	return report, ok
}

// walBaselines loads BENCH_wal.json: the wal=off and wal=buffered rows
// become absolute expectations on BenchmarkWALOverhead sub-benchmarks,
// and max_overhead is the group-commit budget the ratio gate enforces on
// the measured buffered/off pair. The wal=fsync row is deliberately NOT a
// baseline — its figure tracks the machine's storage, not the code — but
// gateWalRatio still insists it was measured, so the durable path cannot
// silently fall out of the bench filter.
func walBaselines(path string) ([]baseline, float64, error) {
	var doc struct {
		Rows []struct {
			WAL     string  `json:"wal"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
		MaxOverhead float64 `json:"max_overhead"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, 0, err
	}
	if doc.MaxOverhead <= 1 {
		return nil, 0, fmt.Errorf("benchgate: %s: max_overhead must be > 1, got %v", path, doc.MaxOverhead)
	}
	var out []baseline
	for _, r := range doc.Rows {
		if r.WAL == "fsync" {
			continue
		}
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkWALOverhead/wal=%s", r.WAL),
			ns:   r.NsPerOp,
		})
	}
	return out, doc.MaxOverhead, nil
}

// gateWalRatio checks the group-commit budget: the measured wal=buffered
// figure may exceed the measured wal=off figure by at most maxOverhead.
// It also requires the wal=fsync row to have run at all — the only check
// that row gets.
func gateWalRatio(measured map[string]measurement, maxOverhead float64) (report []string, ok bool) {
	off, okOff := measured["BenchmarkWALOverhead/wal=off"]
	buffered, okBuf := measured["BenchmarkWALOverhead/wal=buffered"]
	fsync, okFsync := measured["BenchmarkWALOverhead/wal=fsync"]
	ok = true
	if !okFsync {
		report = append(report, "MISSING BenchmarkWALOverhead/wal=fsync (durable path not measured)")
		ok = false
	} else {
		report = append(report, fmt.Sprintf("ok      wal fsync: %.0f ns/op (recorded, not gated)", fsync.ns))
	}
	if !okOff || !okBuf {
		return report, ok
	}
	ratio := buffered.ns / off.ns
	if ratio > maxOverhead {
		report = append(report, fmt.Sprintf("FAIL    wal overhead: buffered/off = %.0f/%.0f ns/op = %.3f× > %.2f× budget",
			buffered.ns, off.ns, ratio, maxOverhead))
		return report, false
	}
	report = append(report, fmt.Sprintf("ok      wal overhead: buffered/off = %.0f/%.0f ns/op = %.3f× (budget %.2f×)",
		buffered.ns, off.ns, ratio, maxOverhead))
	return report, ok
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return nil
}

// gate compares measured figures against baselines and returns one line
// per baseline plus the verdict. A baseline that records allocs_per_op
// additionally holds the measured allocation count to the same threshold
// factor (plus a +2 absolute floor so near-zero baselines cannot flap on
// a single stray allocation) — and requires the benchmark to have
// reported allocations at all, so dropping b.ReportAllocs cannot
// silently retire the check.
func gate(measured map[string]measurement, baselines []baseline, threshold float64) (report []string, ok bool) {
	ok = true
	for _, b := range baselines {
		got, found := measured[b.name]
		switch {
		case !found:
			report = append(report, fmt.Sprintf("MISSING %s (baseline %.0f ns/op, not in bench output)", b.name, b.ns))
			ok = false
			continue
		case got.ns > b.ns*threshold:
			report = append(report, fmt.Sprintf("FAIL    %s: %.0f ns/op vs baseline %.0f (%.2f× > %.2f×)",
				b.name, got.ns, b.ns, got.ns/b.ns, threshold))
			ok = false
		default:
			report = append(report, fmt.Sprintf("ok      %s: %.0f ns/op vs baseline %.0f (%.2f×)",
				b.name, got.ns, b.ns, got.ns/b.ns))
		}
		if b.allocs <= 0 {
			continue
		}
		limit := b.allocs * threshold
		if floor := b.allocs + 2; limit < floor {
			limit = floor
		}
		switch {
		case !got.hasAllocs:
			report = append(report, fmt.Sprintf("MISSING %s allocs/op (baseline %.1f, bench output has no allocs column)",
				b.name, b.allocs))
			ok = false
		case got.allocs > limit:
			report = append(report, fmt.Sprintf("FAIL    %s: %.1f allocs/op vs baseline %.1f (limit %.1f)",
				b.name, got.allocs, b.allocs, limit))
			ok = false
		default:
			report = append(report, fmt.Sprintf("ok      %s: %.1f allocs/op vs baseline %.1f",
				b.name, got.allocs, b.allocs))
		}
	}
	return report, ok
}

func run() error {
	benchPath := flag.String("bench", "", "go test -bench output file (required; - for stdin)")
	restree := flag.String("restree", "BENCH_restree.json", "capacity-index baseline ('' to skip)")
	resd := flag.String("resd", "BENCH_resd.json", "admission-service baseline ('' to skip)")
	reswire := flag.String("reswire", "BENCH_reswire.json", "wire-throughput baseline ('' to skip)")
	tenantPath := flag.String("tenant", "BENCH_tenant.json", "quota-throughput baseline ('' to skip)")
	rebal := flag.String("rebal", "BENCH_rebal.json", "rebalancing-throughput baseline ('' to skip)")
	obsPath := flag.String("obs", "BENCH_obs.json", "obs-overhead baseline and ratio budget ('' to skip)")
	walPath := flag.String("wal", "BENCH_wal.json", "wal-overhead baseline and ratio budget ('' to skip)")
	threshold := flag.Float64("threshold", 2.0, "allowed slowdown factor vs baseline")
	flag.Parse()

	if *benchPath == "" {
		return fmt.Errorf("benchgate: -bench is required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("benchgate: -threshold must be positive, got %v", *threshold)
	}
	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		return err
	}

	var baselines []baseline
	if *restree != "" {
		bs, err := restreeBaselines(*restree)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *resd != "" {
		bs, err := resdBaselines(*resd)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *reswire != "" {
		bs, err := reswireBaselines(*reswire)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *tenantPath != "" {
		bs, err := tenantBaselines(*tenantPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *rebal != "" {
		bs, err := rebalBaselines(*rebal)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	var maxOverhead float64
	if *obsPath != "" {
		bs, budget, err := obsBaselines(*obsPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
		maxOverhead = budget
	}
	var walOverhead float64
	if *walPath != "" {
		bs, budget, err := walBaselines(*walPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
		walOverhead = budget
	}
	if len(baselines) == 0 {
		return fmt.Errorf("benchgate: no baselines loaded")
	}

	report, ok := gate(measured, baselines, *threshold)
	if maxOverhead > 0 {
		ratioReport, ratioOK := gateObsRatio(measured, maxOverhead)
		report = append(report, ratioReport...)
		ok = ok && ratioOK
	}
	if walOverhead > 0 {
		ratioReport, ratioOK := gateWalRatio(measured, walOverhead)
		report = append(report, ratioReport...)
		ok = ok && ratioOK
	}
	fmt.Println(strings.Join(report, "\n"))
	if !ok {
		return fmt.Errorf("benchgate: bench regression gate failed (threshold %.2f×)", *threshold)
	}
	fmt.Printf("benchgate: %d baselines within %.2f×\n", len(baselines), *threshold)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
