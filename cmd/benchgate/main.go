// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output and compares the recorded hot paths against their
// baselines — the tree-backend figures in BENCH_restree.json and
// BENCH_resd.json, the wire-throughput matrix in BENCH_reswire.json, the
// multi-tenant quota matrix in BENCH_tenant.json, the rebalancing off/on
// matrix in BENCH_rebal.json, the instrumentation off/on pair in
// BENCH_obs.json, and the durability off/buffered/fsync triple in
// BENCH_wal.json — failing (exit 1) when any measured figure exceeds its
// recorded baseline by more than the threshold factor.
//
// Usage:
//
//	go test -run '^$' -bench 'CapacityIndex|ResdThroughput|WireThroughput|TenantThroughput|Rebalance|ObsOverhead|WALOverhead' \
//	    -benchtime=0.2s . | tee bench.out
//	benchgate -bench bench.out -restree BENCH_restree.json -resd BENCH_resd.json \
//	    -reswire BENCH_reswire.json -tenant BENCH_tenant.json -rebal BENCH_rebal.json \
//	    -obs BENCH_obs.json -wal BENCH_wal.json -threshold 2
//
// The -obs baseline carries a second, much tighter gate on top of the
// absolute figures: the measured on/off ratio — two numbers from the same
// run, immune to machine speed — must stay within the max_overhead budget
// recorded in BENCH_obs.json (the "observability costs <5%" claim).
//
// The -wal baseline works the same way: the wal=off and wal=buffered rows
// are gated absolutely, and the measured buffered/off ratio is held to the
// max_overhead budget in BENCH_wal.json (the "group commit, not one
// syscall per admission" claim). The wal=fsync row must be present in the
// bench output but is never gated on speed — fsync latency is a property
// of the CI machine's storage, not of this code.
//
// The threshold is deliberately generous (default 2×): the gate exists to
// catch algorithmic regressions — an accidental O(n) scan reintroduced on
// the tree path shows up as 10×+ — not to police machine-to-machine
// noise. A missing benchmark is also a failure, so the gate cannot pass
// vacuously when a rename silently empties the -bench filter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkCapacityIndex/backend=tree/n=10000-8   175087   6587 ns/op
//
// The trailing -N (GOMAXPROCS) is optional: Go omits it when procs is 1.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name → ns/op from `go test -bench` output. Names
// keep their sub-benchmark path but drop the -GOMAXPROCS suffix.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = ns
	}
	return out, sc.Err()
}

// baseline is one expected benchmark with its recorded figure.
type baseline struct {
	name string
	ns   float64
}

// restreeBaselines loads the tree-backend rows of BENCH_restree.json as
// expectations on BenchmarkCapacityIndex sub-benchmarks.
func restreeBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Reservations int     `json:"reservations"`
			TreeNsPerOp  float64 `json:"tree_ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkCapacityIndex/backend=tree/n=%d", r.Reservations),
			ns:   r.TreeNsPerOp,
		})
	}
	return out, nil
}

// resdBaselines loads the tree-backend rows of BENCH_resd.json as
// expectations on BenchmarkResdThroughput sub-benchmarks.
func resdBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Backend string  `json:"backend"`
			Shards  int     `json:"shards"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		if r.Backend != "tree" {
			continue
		}
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkResdThroughput/backend=tree/shards=%d", r.Shards),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// reswireBaselines loads BENCH_reswire.json rows as expectations on
// BenchmarkWireThroughput sub-benchmarks (both pipelining settings: a
// regression in the unpipelined RPC path is as real as one in the
// pipelined path).
func reswireBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Clients  int     `json:"clients"`
			Pipeline string  `json:"pipeline"`
			NsPerOp  float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkWireThroughput/clients=%d/pipeline=%s", r.Clients, r.Pipeline),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// tenantBaselines loads BENCH_tenant.json rows as expectations on
// BenchmarkTenantThroughput sub-benchmarks (both enforcement modes across
// the tenant axis: a lock sneaking onto the lock-free acquire path or a
// per-tenant scan shows up at every row).
func tenantBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Tenants int     `json:"tenants"`
			Mode    string  `json:"mode"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkTenantThroughput/tenants=%d/mode=%s", r.Tenants, r.Mode),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// rebalBaselines loads BENCH_rebal.json rows as expectations on
// BenchmarkRebalance sub-benchmarks (both rebalancer settings on both
// backends: a regression in the hot-shard baseline is as real as one in
// the migrated steady state, and a balancer gone thrash-happy shows up
// as the on axis blowing past its recorded figure).
func rebalBaselines(path string) ([]baseline, error) {
	var doc struct {
		Rows []struct {
			Backend   string  `json:"backend"`
			Rebalance string  `json:"rebalance"`
			NsPerOp   float64 `json:"ns_per_op"`
		} `json:"rows"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkRebalance/backend=%s/rebalance=%s", r.Backend, r.Rebalance),
			ns:   r.NsPerOp,
		})
	}
	return out, nil
}

// obsBaselines loads BENCH_obs.json: each off/on row becomes an
// expectation on a BenchmarkObsOverhead sub-benchmark, and max_overhead
// is the instrumentation budget the ratio gate enforces on the measured
// pair (the on/off ratio of one run is immune to machine speed, so it is
// held to its own, much tighter bound than the absolute threshold).
func obsBaselines(path string) ([]baseline, float64, error) {
	var doc struct {
		Rows []struct {
			Obs     string  `json:"obs"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
		MaxOverhead float64 `json:"max_overhead"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, 0, err
	}
	if doc.MaxOverhead <= 1 {
		return nil, 0, fmt.Errorf("benchgate: %s: max_overhead must be > 1, got %v", path, doc.MaxOverhead)
	}
	var out []baseline
	for _, r := range doc.Rows {
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkObsOverhead/obs=%s", r.Obs),
			ns:   r.NsPerOp,
		})
	}
	return out, doc.MaxOverhead, nil
}

// gateObsRatio checks the instrumentation-cost budget: the measured
// obs=on figure may exceed the measured obs=off figure by at most
// maxOverhead. Missing sub-benchmarks are already reported by the
// baseline gate, so this adds nothing for them.
func gateObsRatio(measured map[string]float64, maxOverhead float64) (report []string, ok bool) {
	off, okOff := measured["BenchmarkObsOverhead/obs=off"]
	on, okOn := measured["BenchmarkObsOverhead/obs=on"]
	if !okOff || !okOn {
		return nil, true
	}
	ratio := on / off
	if ratio > maxOverhead {
		return []string{fmt.Sprintf("FAIL    obs overhead: on/off = %.0f/%.0f ns/op = %.3f× > %.2f× budget",
			on, off, ratio, maxOverhead)}, false
	}
	return []string{fmt.Sprintf("ok      obs overhead: on/off = %.0f/%.0f ns/op = %.3f× (budget %.2f×)",
		on, off, ratio, maxOverhead)}, true
}

// walBaselines loads BENCH_wal.json: the wal=off and wal=buffered rows
// become absolute expectations on BenchmarkWALOverhead sub-benchmarks,
// and max_overhead is the group-commit budget the ratio gate enforces on
// the measured buffered/off pair. The wal=fsync row is deliberately NOT a
// baseline — its figure tracks the machine's storage, not the code — but
// gateWalRatio still insists it was measured, so the durable path cannot
// silently fall out of the bench filter.
func walBaselines(path string) ([]baseline, float64, error) {
	var doc struct {
		Rows []struct {
			WAL     string  `json:"wal"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"rows"`
		MaxOverhead float64 `json:"max_overhead"`
	}
	if err := readJSON(path, &doc); err != nil {
		return nil, 0, err
	}
	if doc.MaxOverhead <= 1 {
		return nil, 0, fmt.Errorf("benchgate: %s: max_overhead must be > 1, got %v", path, doc.MaxOverhead)
	}
	var out []baseline
	for _, r := range doc.Rows {
		if r.WAL == "fsync" {
			continue
		}
		out = append(out, baseline{
			name: fmt.Sprintf("BenchmarkWALOverhead/wal=%s", r.WAL),
			ns:   r.NsPerOp,
		})
	}
	return out, doc.MaxOverhead, nil
}

// gateWalRatio checks the group-commit budget: the measured wal=buffered
// figure may exceed the measured wal=off figure by at most maxOverhead.
// It also requires the wal=fsync row to have run at all — the only check
// that row gets.
func gateWalRatio(measured map[string]float64, maxOverhead float64) (report []string, ok bool) {
	off, okOff := measured["BenchmarkWALOverhead/wal=off"]
	buffered, okBuf := measured["BenchmarkWALOverhead/wal=buffered"]
	fsync, okFsync := measured["BenchmarkWALOverhead/wal=fsync"]
	ok = true
	if !okFsync {
		report = append(report, "MISSING BenchmarkWALOverhead/wal=fsync (durable path not measured)")
		ok = false
	} else {
		report = append(report, fmt.Sprintf("ok      wal fsync: %.0f ns/op (recorded, not gated)", fsync))
	}
	if !okOff || !okBuf {
		return report, ok
	}
	ratio := buffered / off
	if ratio > maxOverhead {
		report = append(report, fmt.Sprintf("FAIL    wal overhead: buffered/off = %.0f/%.0f ns/op = %.3f× > %.2f× budget",
			buffered, off, ratio, maxOverhead))
		return report, false
	}
	report = append(report, fmt.Sprintf("ok      wal overhead: buffered/off = %.0f/%.0f ns/op = %.3f× (budget %.2f×)",
		buffered, off, ratio, maxOverhead))
	return report, ok
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return nil
}

// gate compares measured figures against baselines and returns one line
// per baseline plus the verdict.
func gate(measured map[string]float64, baselines []baseline, threshold float64) (report []string, ok bool) {
	ok = true
	for _, b := range baselines {
		got, found := measured[b.name]
		switch {
		case !found:
			report = append(report, fmt.Sprintf("MISSING %s (baseline %.0f ns/op, not in bench output)", b.name, b.ns))
			ok = false
		case got > b.ns*threshold:
			report = append(report, fmt.Sprintf("FAIL    %s: %.0f ns/op vs baseline %.0f (%.2f× > %.2f×)",
				b.name, got, b.ns, got/b.ns, threshold))
			ok = false
		default:
			report = append(report, fmt.Sprintf("ok      %s: %.0f ns/op vs baseline %.0f (%.2f×)",
				b.name, got, b.ns, got/b.ns))
		}
	}
	return report, ok
}

func run() error {
	benchPath := flag.String("bench", "", "go test -bench output file (required; - for stdin)")
	restree := flag.String("restree", "BENCH_restree.json", "capacity-index baseline ('' to skip)")
	resd := flag.String("resd", "BENCH_resd.json", "admission-service baseline ('' to skip)")
	reswire := flag.String("reswire", "BENCH_reswire.json", "wire-throughput baseline ('' to skip)")
	tenantPath := flag.String("tenant", "BENCH_tenant.json", "quota-throughput baseline ('' to skip)")
	rebal := flag.String("rebal", "BENCH_rebal.json", "rebalancing-throughput baseline ('' to skip)")
	obsPath := flag.String("obs", "BENCH_obs.json", "obs-overhead baseline and ratio budget ('' to skip)")
	walPath := flag.String("wal", "BENCH_wal.json", "wal-overhead baseline and ratio budget ('' to skip)")
	threshold := flag.Float64("threshold", 2.0, "allowed slowdown factor vs baseline")
	flag.Parse()

	if *benchPath == "" {
		return fmt.Errorf("benchgate: -bench is required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("benchgate: -threshold must be positive, got %v", *threshold)
	}
	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		return err
	}

	var baselines []baseline
	if *restree != "" {
		bs, err := restreeBaselines(*restree)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *resd != "" {
		bs, err := resdBaselines(*resd)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *reswire != "" {
		bs, err := reswireBaselines(*reswire)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *tenantPath != "" {
		bs, err := tenantBaselines(*tenantPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	if *rebal != "" {
		bs, err := rebalBaselines(*rebal)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
	}
	var maxOverhead float64
	if *obsPath != "" {
		bs, budget, err := obsBaselines(*obsPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
		maxOverhead = budget
	}
	var walOverhead float64
	if *walPath != "" {
		bs, budget, err := walBaselines(*walPath)
		if err != nil {
			return err
		}
		baselines = append(baselines, bs...)
		walOverhead = budget
	}
	if len(baselines) == 0 {
		return fmt.Errorf("benchgate: no baselines loaded")
	}

	report, ok := gate(measured, baselines, *threshold)
	if maxOverhead > 0 {
		ratioReport, ratioOK := gateObsRatio(measured, maxOverhead)
		report = append(report, ratioReport...)
		ok = ok && ratioOK
	}
	if walOverhead > 0 {
		ratioReport, ratioOK := gateWalRatio(measured, walOverhead)
		report = append(report, ratioReport...)
		ok = ok && ratioOK
	}
	fmt.Println(strings.Join(report, "\n"))
	if !ok {
		return fmt.Errorf("benchgate: bench regression gate failed (threshold %.2f×)", *threshold)
	}
	fmt.Printf("benchgate: %d baselines within %.2f×\n", len(baselines), *threshold)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
