// Command obscheck strict-parses a Prometheus text exposition — from a
// live /metrics endpoint or stdin — and fails when it is malformed or
// missing required metric families. It is the scrape-side conformance
// check of the obs exposition writer (the same parser the unit tests run
// against), used by CI's observability smoke job against a running
// resdsrv and handy as a one-shot "is the service exporting what the
// dashboards expect" probe:
//
//	obscheck -url http://127.0.0.1:9090/metrics \
//	    -require resd_shard_queue_depth,resd_admissions_total
//	curl -s http://host:9090/metrics | obscheck -require resd_shard_active
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func run() error {
	url := flag.String("url", "", "scrape this endpoint (default: read stdin)")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	timeout := flag.Duration("timeout", 5*time.Second, "scrape timeout (with -url)")
	verbose := flag.Bool("v", false, "list every family with its sample count")
	flag.Parse()

	var data []byte
	if *url != "" {
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("obscheck: %s answered %s", *url, resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	} else {
		var err error
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
	}

	exp, err := obs.ParseExposition(data)
	if err != nil {
		return fmt.Errorf("obscheck: exposition is malformed: %w", err)
	}

	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if exp.Family(name) == nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("obscheck: exposition parses but lacks required families: %s",
			strings.Join(missing, ", "))
	}

	samples := 0
	for _, f := range exp.Families {
		samples += len(f.Samples)
		if *verbose {
			fmt.Printf("%-40s %-8s %d samples\n", f.Name, f.Type, len(f.Samples))
		}
	}
	fmt.Printf("obscheck: ok: %d families, %d samples\n", len(exp.Families), samples)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
