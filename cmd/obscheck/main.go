// Command obscheck strict-parses a Prometheus text exposition — from a
// live /metrics endpoint or stdin — and fails when it is malformed or
// missing required metric families. It is the scrape-side conformance
// check of the obs exposition writer (the same parser the unit tests run
// against), used by CI's observability smoke job against a running
// resdsrv and handy as a one-shot "is the service exporting what the
// dashboards expect" probe:
//
//	obscheck -url http://127.0.0.1:9090/metrics \
//	    -require resd_shard_queue_depth,resd_admissions_total
//	curl -s http://host:9090/metrics | obscheck -require resd_shard_active
//
// With -watch it checks the push side instead: it subscribes to a
// resdsrv wire address with the v5 Watch op and verifies the stream —
// at least -frames telemetry frames arrive, sequence numbers strictly
// increase (a restart mid-check fails the run), and the cumulative
// counters (admitted, cancelled, ops, traces) never go backwards. -min
// additionally demands that many admissions be observed across the run,
// so CI can assert the subscriber saw real traffic, not an idle server:
//
//	obscheck -watch 127.0.0.1:7433 -frames 5 -interval 200ms -min 1000
//
// With -flight it validates the flight-recorder surface instead: it
// fetches /debug/flight from the observability base URL, checks the
// reported health state and journal, -nostall fails the run when the
// watchdog ever judged a shard loop stalled (state or journal
// evidence), and -capture requests an on-demand diagnostic bundle and
// validates its contents (manifest, journal, parseable metrics
// snapshot):
//
//	obscheck -flight http://127.0.0.1:9090 -nostall
//	obscheck -flight http://127.0.0.1:9090 -capture
//
// With -slo the scrape check additionally asserts the SLO surface: the
// resd_slo_* families an armed engine exports must be present, and the
// worst resd_slo_alert_state gauge across objectives must match the
// expectation — ok (0), warn (1), page (2), or any (armed, state free).
// CI's burn-rate drill uses it to prove an alert both fires and clears:
//
//	obscheck -url http://127.0.0.1:9090/metrics -slo page
//	obscheck -url http://127.0.0.1:9090/metrics -slo ok
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/reswire"
)

func run() error {
	url := flag.String("url", "", "scrape this endpoint (default: read stdin)")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	timeout := flag.Duration("timeout", 5*time.Second, "scrape timeout (with -url)")
	verbose := flag.Bool("v", false, "list every family with its sample count / every telemetry frame")
	watch := flag.String("watch", "", "subscribe to this resdsrv wire address and verify pushed telemetry instead of scraping")
	frames := flag.Int("frames", 5, "telemetry frames that must arrive (with -watch)")
	interval := flag.Duration("interval", 200*time.Millisecond, "requested push period (with -watch)")
	minAdmitted := flag.Uint64("min", 0, "total admissions the final frame must have reached (with -watch)")
	flightURL := flag.String("flight", "", "validate the flight-recorder surface at this observability base URL instead of scraping")
	nostall := flag.Bool("nostall", false, "fail when the watchdog ever recorded a stall (with -flight)")
	capture := flag.Bool("capture", false, "request an on-demand bundle and validate its contents (with -flight)")
	sloExpect := flag.String("slo", "", "additionally assert the SLO surface: resd_slo_* families present and worst alert state matching ok|warn|page|any")
	flag.Parse()

	if *watch != "" {
		return runWatch(*watch, *interval, *frames, *minAdmitted, *verbose)
	}
	if *flightURL != "" {
		return runFlight(*flightURL, *timeout, *nostall, *capture, *verbose)
	}

	var data []byte
	if *url != "" {
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("obscheck: %s answered %s", *url, resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	} else {
		var err error
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
	}

	exp, err := obs.ParseExposition(data)
	if err != nil {
		return fmt.Errorf("obscheck: exposition is malformed: %w", err)
	}

	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if exp.Family(name) == nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("obscheck: exposition parses but lacks required families: %s",
			strings.Join(missing, ", "))
	}
	if *sloExpect != "" {
		if err := checkSLO(exp, *sloExpect, *verbose); err != nil {
			return err
		}
	}

	samples := 0
	for _, f := range exp.Families {
		samples += len(f.Samples)
		if *verbose {
			fmt.Printf("%-40s %-8s %d samples\n", f.Name, f.Type, len(f.Samples))
		}
	}
	fmt.Printf("obscheck: ok: %d families, %d samples\n", len(exp.Families), samples)
	return nil
}

// watchTotals is the monotonicity fingerprint of one telemetry frame:
// every cumulative counter the stream promises never decreases, summed
// across shards so rebalancing between frames cannot trip the check.
type watchTotals struct {
	admitted, cancelled, rejected, ops, traced uint64
}

func totalsOf(t reswire.Telemetry) watchTotals {
	var w watchTotals
	for i := range t.Shards {
		st := &t.Shards[i]
		w.admitted += st.Admitted
		w.cancelled += st.Cancelled
		w.rejected += st.Rejected + st.RejectedDeadline + st.RejectedQuota
		w.ops += st.Ops
	}
	w.traced = t.TracesSampled
	return w
}

// runWatch subscribes to addr and fails unless the stream behaves: the
// subscription is answered, at least `frames` frames arrive before the
// deadline, Seq strictly increases (the client restarts Seq at 1 only
// after a reconnect — mid-check that means the server bounced, which a
// smoke test should fail on), and no cumulative counter regresses.
func runWatch(addr string, interval time.Duration, frames int, minAdmitted uint64, verbose bool) error {
	if frames < 1 {
		return fmt.Errorf("obscheck: -frames must be >= 1, got %d", frames)
	}
	client, err := reswire.Dial(addr, reswire.Options{})
	if err != nil {
		return err
	}
	defer client.Close()

	// Generous deadline: the server may clamp the requested interval up
	// to its floor, and CI boxes stall — but a healthy server pushes the
	// first frame immediately, so 10× the nominal span plus a constant
	// only ever matters when something is actually wrong.
	deadline := 10*time.Duration(frames)*interval + 5*time.Second
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	ch, err := client.Watch(ctx, reswire.WatchOptions{Interval: interval})
	if err != nil {
		return err
	}

	var lastSeq uint64
	var last watchTotals
	got := 0
	for tel := range ch {
		if tel.Seq <= lastSeq {
			return fmt.Errorf("obscheck: watch: frame %d has seq %d after seq %d (server restarted mid-check?)",
				got+1, tel.Seq, lastSeq)
		}
		cur := totalsOf(tel)
		if cur.admitted < last.admitted || cur.cancelled < last.cancelled ||
			cur.rejected < last.rejected || cur.ops < last.ops || cur.traced < last.traced {
			return fmt.Errorf("obscheck: watch: cumulative counters regressed between frames: %+v -> %+v", last, cur)
		}
		lastSeq, last = tel.Seq, cur
		got++
		if verbose {
			fmt.Printf("frame %2d  seq=%-4d dropped=%-3d shards=%d admitted=%d ops=%d traced=%d\n",
				got, tel.Seq, tel.Dropped, len(tel.Shards), cur.admitted, cur.ops, cur.traced)
		}
		if got >= frames {
			break
		}
	}
	if got < frames {
		return fmt.Errorf("obscheck: watch: stream ended after %d/%d frames (deadline %v): %w",
			got, frames, deadline, ctx.Err())
	}
	if last.admitted < minAdmitted {
		return fmt.Errorf("obscheck: watch: saw %d admissions, want >= %d", last.admitted, minAdmitted)
	}
	fmt.Printf("obscheck: watch ok: %d frames from %s, seq %d, %d admitted, %d ops\n",
		frames, addr, lastSeq, last.admitted, last.ops)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
