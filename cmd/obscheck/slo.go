package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// sloFamilies are the metric families an armed SLO engine always
// exports; -slo fails when any is absent, whatever state is expected.
var sloFamilies = []string{
	"resd_slo_attainment",
	"resd_slo_error_budget_remaining",
	"resd_slo_burn_rate",
	"resd_slo_alert_state",
	"resd_slo_alert_transitions_total",
}

// checkSLO asserts the scraped exposition carries the SLO surface and
// that the worst resd_slo_alert_state gauge matches the expectation:
// "ok" (no rule firing anywhere), "warn" (worst objective warns),
// "page" (worst objective pages) or "any" (engine armed, state free).
// The worst state is the check because that is exactly the severity an
// alerting pipeline keyed on the gauge would route on.
func checkSLO(exp *obs.Exposition, expect string, verbose bool) error {
	want := -1.0
	switch expect {
	case "any":
	case "ok":
		want = 0
	case "warn":
		want = 1
	case "page":
		want = 2
	default:
		return fmt.Errorf("obscheck: -slo must be ok, warn, page or any, got %q", expect)
	}

	var missing []string
	for _, name := range sloFamilies {
		if exp.Family(name) == nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("obscheck: slo: exposition lacks SLO families (engine not armed?): %s",
			strings.Join(missing, ", "))
	}

	states := exp.Family("resd_slo_alert_state")
	if len(states.Samples) == 0 {
		return fmt.Errorf("obscheck: slo: resd_slo_alert_state has no samples (spec declares no objectives?)")
	}
	worst, worstObj := -1.0, ""
	for _, s := range states.Samples {
		name := s.Labels["objective"]
		if t := s.Labels["tenant"]; t != "" {
			name += "{tenant=" + t + "}"
		}
		if verbose {
			fmt.Printf("slo %-32s state=%.0f\n", name, s.Value)
		}
		if s.Value > worst {
			worst, worstObj = s.Value, name
		}
	}
	if want >= 0 && worst != want {
		return fmt.Errorf("obscheck: slo: worst alert state is %.0f (objective %s), want %.0f (%s)",
			worst, worstObj, want, expect)
	}
	fmt.Printf("obscheck: slo ok: %d objectives, worst alert state %.0f (want %s)\n",
		len(states.Samples), worst, expect)
	return nil
}
