package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// flightStatus mirrors the JSON /debug/flight serves (the fields the
// checker needs; unknown fields are ignored).
type flightStatus struct {
	State   string            `json:"state"`
	Warning string            `json:"warning"`
	Counts  map[string]uint64 `json:"counts"`
	Events  []flightEvent     `json:"events"`
	Bundles []string          `json:"bundles"`
}

type flightEvent struct {
	Seq    uint64         `json:"seq"`
	Sev    string         `json:"sev"`
	Subsys string         `json:"subsys"`
	Shard  int            `json:"shard"`
	Msg    string         `json:"msg"`
	KV     []flightKVPair `json:"kv"`
}

type flightKVPair struct {
	K string `json:"k"`
	V string `json:"v"`
}

// runFlight fetches and validates the flight-recorder surface at base
// (the observability listener's root URL). nostall fails the run on any
// stall evidence — current state or a journaled transition to stalled.
// capture additionally POSTs an on-demand bundle and validates what
// came back: a manifest naming the bundle, a journal dump, and a
// metrics snapshot this binary's own strict parser accepts.
func runFlight(base string, timeout time.Duration, nostall, capture, verbose bool) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: timeout}

	var status flightStatus
	if err := getJSON(client, base+"/debug/flight?n=0", &status); err != nil {
		return fmt.Errorf("obscheck: flight: %w", err)
	}
	if status.State == "" {
		return fmt.Errorf("obscheck: flight: /debug/flight reports no state")
	}
	if verbose {
		for _, ev := range status.Events {
			fmt.Printf("journal %4d  %-5s %-8s shard=%-3d %s\n", ev.Seq, ev.Sev, ev.Subsys, ev.Shard, ev.Msg)
		}
	}
	if nostall {
		if status.State == "stalled" {
			return fmt.Errorf("obscheck: flight: node is stalled: %s", status.Warning)
		}
		for _, ev := range status.Events {
			if ev.Subsys != "flight" {
				continue
			}
			for _, kv := range ev.KV {
				if kv.K == "to" && kv.V == "stalled" {
					return fmt.Errorf("obscheck: flight: journal records a stall (seq %d): %s", ev.Seq, ev.Msg)
				}
			}
		}
	}

	if capture {
		resp, err := client.Post(base+"/debug/flight/capture?reason=obscheck", "", nil)
		if err != nil {
			return fmt.Errorf("obscheck: flight: capture: %w", err)
		}
		body := json.NewDecoder(resp.Body)
		var out struct {
			Bundle string `json:"bundle"`
		}
		derr := body.Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("obscheck: flight: capture answered %s", resp.Status)
		}
		if derr != nil || out.Bundle == "" {
			return fmt.Errorf("obscheck: flight: capture returned no bundle name (%v)", derr)
		}
		if err := checkBundle(client, base, out.Bundle, verbose); err != nil {
			return err
		}
		fmt.Printf("obscheck: flight ok: state %s, %d journal events, bundle %s validated\n",
			status.State, len(status.Events), out.Bundle)
		return nil
	}
	fmt.Printf("obscheck: flight ok: state %s, %d journal events, %d bundles\n",
		status.State, len(status.Events), len(status.Bundles))
	return nil
}

// checkBundle validates one bundle's required files: the manifest names
// the bundle and lists files, the journal dump is JSON, and the metrics
// snapshot parses under the same strict parser -url scrapes use.
func checkBundle(client *http.Client, base, name string, verbose bool) error {
	fetch := func(file string) ([]byte, error) {
		return getBytes(client, base+"/debug/flight/bundle/"+name+"/"+file)
	}
	raw, err := fetch("manifest.json")
	if err != nil {
		return fmt.Errorf("obscheck: flight: bundle %s: %w", name, err)
	}
	var man struct {
		Name  string   `json:"name"`
		Files []string `json:"files"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("obscheck: flight: bundle %s: manifest: %w", name, err)
	}
	if man.Name != name {
		return fmt.Errorf("obscheck: flight: bundle manifest names %q, fetched %q", man.Name, name)
	}
	raw, err = fetch("journal.json")
	if err != nil {
		return fmt.Errorf("obscheck: flight: bundle %s: %w", name, err)
	}
	var events []flightEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("obscheck: flight: bundle %s: journal: %w", name, err)
	}
	if raw, err = fetch("metrics.prom"); err == nil {
		if _, perr := obs.ParseExposition(raw); perr != nil {
			return fmt.Errorf("obscheck: flight: bundle %s: metrics snapshot malformed: %w", name, perr)
		}
	}
	if verbose {
		fmt.Printf("bundle %s: %d files, %d journal events\n", name, len(man.Files), len(events))
	}
	return nil
}

func getBytes(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %s", url, resp.Status)
	}
	return buf.Bytes(), nil
}

func getJSON(client *http.Client, url string, v any) error {
	raw, err := getBytes(client, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}
