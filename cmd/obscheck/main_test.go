package main

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObscheckAgainstLiveHandler drives the built checker binary against
// a live obs.Handler: a healthy registry passes, a required family that
// is not exported fails with its name in the error.
func TestObscheckAgainstLiveHandler(t *testing.T) {
	bin := t.TempDir() + "/obscheck"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	reg := obs.NewRegistry()
	reg.NewCounter("demo_ops_total", "Ops.").Add(3)
	reg.NewGauge("demo_depth", "Depth.", obs.L("shard", "0")).Set(7)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: obs.Handler(reg, func() bool { return true })}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/metrics"

	out, err := exec.Command(bin, "-url", url, "-require", "demo_ops_total,demo_depth").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "obscheck: ok") {
		t.Fatalf("healthy scrape: %v\n%s", err, out)
	}

	out, err = exec.Command(bin, "-url", url, "-require", "demo_missing_total").CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || !strings.Contains(string(out), "demo_missing_total") {
		t.Fatalf("missing family: err=%v\n%s", err, out)
	}

	// Malformed input on stdin must fail the parse, not be glossed over.
	cmd := exec.Command(bin)
	cmd.Stdin = bytes.NewReader([]byte("demo_ops_total 3")) // no trailing newline
	out, err = cmd.CombinedOutput()
	if !errors.As(err, &exit) || !strings.Contains(string(out), "malformed") {
		t.Fatalf("malformed exposition: err=%v\n%s", err, out)
	}
}
