// Command resload is the load generator for the internal/resd
// reservation-admission service: it replays a synthetic or SWF-derived
// request stream at a target rate and reports admission throughput and
// latency percentiles — the operational view of the paper's admission
// rule under heavy concurrent traffic.
//
// It drives either an in-process service (the default) or, with -addr, a
// live resdsrv server over the reswire protocol, in which case the
// reported percentiles are wire-level round-trip latencies:
//
//	resload -shards 4 -m 64 -n 20000 -placement p2c -backend tree
//	resload -swf trace.swf -shards 8 -alpha 0.5 -rate 50000
//	resload -addr 127.0.0.1:7433 -n 100000 -clients 16 -conns 4
//	resload -addr 127.0.0.1:7433 -pipeline=false           # RPC baseline
//	resload -slack 500 -n 20000                            # SLA mode
//	resload -tenants 8 -skew zipf -quotamode hard          # multi-tenant mix
//	resload -shards 8 -placement first-fit -rebalance 5ms  # live rebalancing
//
// Each request asks for the earliest admissible slot at or after its
// arrival time; -slack gives every request a deadline that many ticks
// after its ready time, so admissions the service cannot start in time
// come back as explicit REJECTED_DEADLINE answers. -cancelfrac controls
// how much of the admitted load is cancelled again by the clients, which
// keeps the shard indexes at a steady state instead of growing without
// bound. The summary separates admissions, rejections (α rule, deadline
// and tenant quota, expected under load) and hard errors (never
// expected). -statsevery prints a live one-line progress row (cumulative
// admissions, rejections, errors, p99 latency and achieved rate) to
// stderr at that period while the stream runs, so long runs are
// observable before the summary lands. Against a remote server the rows
// come from a v5 Watch subscription instead: the server pushes its own
// cumulative shard counters every period, so the live view is the
// server's (queue depths included) and costs zero Stats round trips.
//
// With -tenants N the stream is attributed to N tenants, spread
// uniformly or — production-shaped — by a zipf(1.1) popularity law
// (-skew zipf: a couple of tenants dominate, the rest trickle), and the
// summary adds a per-tenant table: admissions, each rejection kind, and
// p50/p90/p99 latency per tenant. -quotamode hard|soft additionally
// builds an in-process quota registry giving every tenant an equal share
// of the α-prefix, so hard mode shows REJECTED_QUOTA load shedding and
// soft mode shows fair-share ordering; against a remote server the
// budgets come from resdsrv's own -quotas file instead.
//
// With -rebalance (in-process mode) a background rebalancer migrates
// admitted future reservations off hot shards while the stream runs —
// pair it with -placement first-fit for a deliberately skewed baseline —
// and the summary reports the migrations next to each shard's books. The
// per-tenant table always includes p99 start-time slack (admitted start −
// ready) and, under -slack, the tenant's deadline attainment — admitted
// over admitted + deadline-rejected, the same objective the server's SLO
// engine (resdsrv -slo) tracks per tenant.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/workload"
)

func run() error {
	addr := flag.String("addr", "", "drive a remote resdsrv at this address instead of an in-process service")
	conns := flag.Int("conns", 2, "client connections to the remote server (with -addr)")
	pipeline := flag.Bool("pipeline", true, "pipeline requests per connection (with -addr)")
	shards := flag.Int("shards", 4, "cluster partitions (in-process mode)")
	m := flag.Int("m", 64, "processors per partition")
	n := flag.Int("n", 10000, "number of reservation requests")
	nres := flag.Int("nres", 0, "pre-existing reservations per shard (maintenance windows)")
	alpha := flag.Float64("alpha", 0.5, "α admission rule: ⌊α·m⌋ processors stay free per shard")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	placement := flag.String("placement", "least-loaded", "shard routing policy (first-fit, least-loaded, p2c, pressure)")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	rate := flag.Float64("rate", 0, "target request rate per second (0 = unthrottled)")
	cancelfrac := flag.Float64("cancelfrac", 0.5, "fraction of admissions the clients cancel again")
	slack := flag.Int64("slack", 0, "per-request deadline: ready+slack ticks (0 = no deadline)")
	batch := flag.Int("batch", 64, "max requests group-committed per event-loop turn")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	statsevery := flag.Duration("statsevery", 0, "print a one-line progress row this often while the stream runs (0 = off)")
	swf := flag.String("swf", "", "SWF trace file (overrides synthetic generation)")
	tenants := flag.Int("tenants", 0, "attribute the stream to this many tenants (0 = single default tenant)")
	skew := flag.String("skew", "uniform", "tenant popularity (uniform or zipf)")
	quotamode := flag.String("quotamode", "", "in-process quota enforcement with equal shares (hard or soft; '' = no quotas)")
	rebalance := flag.Duration("rebalance", 0, "in-process background rebalancing interval (0 = disabled)")
	rebalthreshold := flag.Float64("rebalthreshold", resd.DefaultRebalanceThreshold, "imbalance score (0..1) that triggers a rebalancing round")
	rebalfreeze := flag.Int64("rebalfreeze", 0, "frozen window Δ: never migrate reservations starting within Δ ticks")
	rebalmoves := flag.Int("rebalmoves", resd.DefaultRebalanceMaxMoves, "max migrations per rebalancing round")
	flag.Parse()

	if err := cliflag.First(
		cliflag.Positive("shards", *shards),
		cliflag.Positive("m", *m),
		cliflag.Positive("n", *n),
		cliflag.NonNegative("nres", *nres),
		cliflag.Unit("alpha", *alpha),
		cliflag.Positive("clients", *clients),
		cliflag.NonNegativeF("rate", *rate),
		cliflag.Unit("cancelfrac", *cancelfrac),
		cliflag.Positive("batch", *batch),
		cliflag.Positive("conns", *conns),
		cliflag.NonNegative("tenants", *tenants),
	); err != nil {
		return err
	}
	if *slack < 0 {
		return fmt.Errorf("%w: -slack must be >= 0, got %d", cliflag.ErrFlag, *slack)
	}
	if *statsevery < 0 {
		return fmt.Errorf("%w: -statsevery must be >= 0, got %v", cliflag.ErrFlag, *statsevery)
	}
	if err := cliflag.RebalanceFlags(*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves); err != nil {
		return err
	}
	if *tenants > maxTenants {
		// latTenant records tenant indices as uint16; more tenants than
		// that would silently alias rows in the per-tenant table.
		return fmt.Errorf("%w: -tenants must be <= %d, got %d", cliflag.ErrFlag, maxTenants, *tenants)
	}
	if *skew != "uniform" && *skew != "zipf" {
		return fmt.Errorf("%w: -skew must be uniform or zipf, got %q", cliflag.ErrFlag, *skew)
	}
	if *quotamode != "" {
		if _, err := tenant.ParseMode(*quotamode); err != nil {
			return fmt.Errorf("%w: -quotamode: %v", cliflag.ErrFlag, err)
		}
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}

	names := tenantNames(*tenants)
	reqs, err := requestStream(*swf, *m, *n, *alpha, *seed, core.Time(*slack), len(names), *skew)
	if err != nil {
		return err
	}

	var target admitter
	var svc *resd.Service
	statsPeriod := *statsevery
	if *addr != "" {
		if ignored := serverSideFlagsSet(); len(ignored) > 0 {
			fmt.Fprintf(os.Stderr,
				"resload: warning: %s configure the in-process service and are ignored with -addr "+
					"(the server was configured by resdsrv's own flags)\n",
				strings.Join(ignored, ", "))
		}
		client, err := reswire.Dial(*addr, reswire.Options{Conns: *conns, Pipeline: *pipeline})
		if err != nil {
			return err
		}
		defer client.Close()
		target = client
		mode := "pipelined"
		if !*pipeline {
			mode = "unpipelined"
		}
		fmt.Printf("resload: %d requests against %s (%d conns, %s), %d clients\n",
			len(reqs), *addr, *conns, mode, *clients)
		if statsPeriod > 0 {
			// Remote runs get their live rows pushed by the server: one
			// Watch subscription delivers the cumulative shard counters
			// every period without a single Stats poll on the request
			// path. The local ticker is disabled — the server's view is
			// the one that can also show queue depths and trace totals.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ch, err := client.Watch(ctx, reswire.WatchOptions{
				Interval: statsPeriod,
				Mask:     reswire.WatchShards | reswire.WatchTraces,
			})
			if err != nil {
				return err
			}
			go func() {
				start := time.Now()
				for tel := range ch {
					fmt.Fprintln(os.Stderr, watchLine(time.Since(start), tel))
				}
			}()
			statsPeriod = 0
		}
	} else {
		var pre []core.Reservation
		if *nres > 0 {
			pre = workload.ReservationStream(rng.New(*seed^0xBEEF), *m, *alpha, *nres, horizonOf(reqs))
		}
		var reg *tenant.Registry
		if *quotamode != "" {
			reg, err = equalShareRegistry(*quotamode, names, *shards, *m, *alpha, horizonOf(reqs))
			if err != nil {
				return err
			}
		}
		svc, err = resd.New(resd.Config{
			Shards: *shards, M: *m, Alpha: *alpha, Backend: *backend,
			Placement: *placement, Batch: *batch, Seed: *seed, Pre: pre,
			Quotas:         reg,
			RebalanceEvery: *rebalance, RebalanceThreshold: *rebalthreshold,
			RebalanceFreeze: core.Time(*rebalfreeze), RebalanceMaxMoves: *rebalmoves,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		target = svc
		fmt.Printf("resload: %d requests, %d shards × m=%d (α=%.2f, floor %d), backend %s, placement %s, %d clients\n",
			len(reqs), *shards, *m, *alpha, svc.Floor(), *backend, *placement, *clients)
		if reg != nil {
			fmt.Printf("resload: quotas %s mode, %d tenants × share %.3f of %d processor·ticks\n",
				reg.Mode(), len(names), 1/float64(len(names)), reg.Capacity())
		}
		if *rebalance > 0 {
			fmt.Printf("resload: rebalancer every %v (threshold %.2f, freeze %d ticks, <= %d moves/round)\n",
				*rebalance, *rebalthreshold, *rebalfreeze, *rebalmoves)
		}
	}

	res := replay(target, reqs, names, *clients, *rate, *cancelfrac, *seed, statsPeriod)

	totalRej := res.rejectedAlpha + res.rejectedDeadline + res.rejectedQuota
	fmt.Printf("\n%d admitted, %d rejected (%d α-rule, %d deadline, %d quota), %d errors in %v (%.0f req/s achieved",
		len(res.admitted), totalRej, res.rejectedAlpha, res.rejectedDeadline, res.rejectedQuota,
		res.errored, res.elapsed.Round(time.Millisecond), float64(len(reqs))/res.elapsed.Seconds())
	if *rate > 0 {
		fmt.Printf(", target %.0f", *rate)
	}
	fmt.Println(")")
	if res.errored > 0 {
		fmt.Printf("WARNING: %d hard errors (first: %v) — these are failures, not load shedding\n",
			res.errored, res.firstErr)
	}

	// The per-tenant table buckets samples through the parallel latTenant
	// and slacks buffers, so it must be assembled before the global sort
	// below destroys the sample order.
	var tenantTbl *stats.Table
	if len(names) > 1 {
		tenantTbl = tenantTable(names, res)
	}
	sort.Float64s(res.lats)
	if len(res.lats) > 0 {
		tbl := stats.NewTable("metric", "latency")
		for _, p := range []struct {
			label string
			p     float64
		}{{"p50", 50}, {"p90", 90}, {"p99", 99}} {
			tbl.AddRow(p.label, time.Duration(stats.Percentile(res.lats, p.p)).Round(time.Microsecond).String())
		}
		tbl.AddRow("max", time.Duration(stats.MaxFloat(res.lats)).Round(time.Microsecond).String())
		fmt.Print(tbl.String())
	}

	if tenantTbl != nil {
		fmt.Print(tenantTbl.String())
	}

	shardStats, err := shardStatsOf(target, svc)
	if err != nil {
		return err
	}
	shtbl := stats.NewTable("shard", "active", "area", "admitted", "cancelled", "rej-α", "rej-dl", "rej-q", "mig-in", "mig-out", "slack-p99", "batches", "ops/batch")
	var migIn, migOut uint64
	for i, st := range shardStats {
		opb := 0.0
		if st.Batches > 0 {
			opb = float64(st.Ops) / float64(st.Batches)
		}
		migIn += st.MigratedIn
		migOut += st.MigratedOut
		shtbl.AddRow(i, st.Active, st.CommittedArea, int64(st.Admitted), int64(st.Cancelled),
			int64(st.Rejected), int64(st.RejectedDeadline), int64(st.RejectedQuota),
			int64(st.MigratedIn), int64(st.MigratedOut), int64(st.SlackP99),
			int64(st.Batches), fmt.Sprintf("%.2f", opb))
	}
	fmt.Print(shtbl.String())
	if migIn > 0 || migOut > 0 || *rebalance > 0 {
		fmt.Printf("rebalancer: %d reservations migrated between shards (in=%d out=%d)\n",
			migOut, migIn, migOut)
	}
	return nil
}

// maxTenants caps -tenants at what the uint16 latTenant recording buffer
// can index.
const maxTenants = 1<<16 - 1

// tenantNames derives the stream's accounting identities: the single
// default tenant when multi-tenancy is off, or t0..tN-1.
func tenantNames(n int) []string {
	if n == 0 {
		return []string{""}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// equalShareRegistry builds the in-process quota registry -quotamode asks
// for: every tenant an equal share of the whole α-prefix area over the
// stream's horizon.
func equalShareRegistry(mode string, names []string, shards, m int, alpha float64, horizon core.Time) (*tenant.Registry, error) {
	capacity := tenant.PrefixCapacity(shards, m, alpha, int64(horizon))
	if capacity < 1 {
		return nil, fmt.Errorf("%w: -quotamode with α=%v leaves no reservable prefix to budget", cliflag.ErrFlag, alpha)
	}
	spec := tenant.Spec{Mode: mode}
	for _, name := range names {
		if name == "" {
			name = tenant.DefaultTenant
		}
		spec.Tenants = append(spec.Tenants, tenant.TenantSpec{Name: name, Share: 1 / float64(len(names))})
	}
	reg, err := tenant.New(capacity, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: -quotamode: %w", cliflag.ErrFlag, err)
	}
	return reg, nil
}

// tenantTable renders the per-tenant breakdown: request mix, admission
// and rejection counts, latency percentiles and the p99 start-time slack
// (the per-tenant SLO: how many ticks past its ready time this tenant's
// work is pushed). The percentile buckets are assembled here, at summary
// time, from the flat recording buffers — the hot path never allocates
// per request — and must run before anything reorders res.lats.
func tenantTable(names []string, res result) *stats.Table {
	buckets := make([][]float64, len(names))
	slackBuckets := make([][]float64, len(names))
	for i, lat := range res.lats {
		ti := res.latTenant[i]
		buckets[ti] = append(buckets[ti], lat)
		slackBuckets[ti] = append(slackBuckets[ti], res.slacks[i])
	}
	tbl := stats.NewTable("tenant", "reqs", "admitted", "rej-α", "rej-dl", "rej-q", "errors", "dl-att", "p50", "p90", "p99", "slack-p99")
	for i, name := range names {
		if name == "" {
			name = tenant.DefaultTenant
		}
		tc := res.perTenant[i]
		sort.Float64s(buckets[i])
		sort.Float64s(slackBuckets[i])
		p := func(q float64) string {
			if len(buckets[i]) == 0 {
				return "-"
			}
			return time.Duration(stats.Percentile(buckets[i], q)).Round(time.Microsecond).String()
		}
		slackP99 := "-"
		if len(slackBuckets[i]) > 0 {
			slackP99 = fmt.Sprintf("%.0f", stats.Percentile(slackBuckets[i], 99))
		}
		// dl-att is the tenant's deadline attainment — the fraction of its
		// deadline-relevant decisions the service started in time, the same
		// per-tenant objective the server's SLO engine tracks. Only deadline
		// rejections count against it; α and quota rejections are different
		// failure modes with their own columns.
		dlAtt := "-"
		if denom := tc.admitted + tc.rejDeadline; denom > 0 {
			dlAtt = fmt.Sprintf("%.2f%%", 100*float64(tc.admitted)/float64(denom))
		}
		tbl.AddRow(name, tc.reqs, tc.admitted, tc.rejAlpha, tc.rejDeadline, tc.rejQuota, tc.errored,
			dlAtt, p(50), p(90), p(99), slackP99)
	}
	return tbl
}

// serverSideFlagsSet lists explicitly-set flags that only configure the
// in-process service, so remote runs can warn instead of silently
// measuring a different experiment than the command line describes.
// (-m and -alpha stay meaningful remotely: they shape the generated
// request stream.)
func serverSideFlagsSet() []string {
	serverOnly := map[string]bool{
		"shards": true, "nres": true, "backend": true, "placement": true, "batch": true,
		"quotamode": true, "rebalance": true, "rebalthreshold": true, "rebalfreeze": true,
		"rebalmoves": true,
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if serverOnly[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

// admitter is the slice of the service the load generator drives; both
// the in-process *resd.Service and the remote *reswire.Client satisfy it.
type admitter interface {
	Admit(req resd.Request) (resd.Reservation, error)
	Cancel(id resd.ID) error
}

// shardStatsOf reads the per-shard summaries from whichever side of the
// wire the run targeted.
func shardStatsOf(target admitter, svc *resd.Service) ([]resd.ShardStats, error) {
	if svc != nil {
		return svc.Stats(), nil
	}
	return target.(*reswire.Client).Stats()
}

// request is one generated admission request. tenant indexes the run's
// tenant-name table.
type request struct {
	ready    core.Time
	q        int
	dur      core.Time
	deadline core.Time
	tenant   int
}

// requestStream derives the request stream: each workload arrival becomes
// "earliest admissible slot of q processors for dur ticks at or after the
// arrival instant", deadline-bounded when slack is positive and
// attributed to one of tenants identities by the skew law. Tenant
// assignment draws from its own rng stream, so the workload shape is
// identical whatever the tenant mix.
func requestStream(swf string, m, n int, alpha float64, seed uint64, slack core.Time, tenants int, skew string) ([]request, error) {
	var arrivals []workload.Arrival
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.ParseSWF(f)
		if err != nil {
			return nil, err
		}
		if tr.MaxProcs > 0 && tr.MaxProcs < m {
			m = tr.MaxProcs
		}
		arrivals, err = tr.Arrivals(m)
		if err != nil {
			return nil, err
		}
		if len(arrivals) > n {
			arrivals = arrivals[:n]
		}
	} else {
		var err error
		arrivals, err = workload.Synthetic(rng.New(seed), workload.SynthConfig{
			M: m, N: n, MaxWidthFrac: maxWidth(alpha),
		})
		if err != nil {
			return nil, err
		}
	}
	var sampleTenant func() int
	switch {
	case tenants <= 1:
		sampleTenant = func() int { return 0 }
	case skew == "zipf":
		z := rng.NewZipf(rng.NewStream(seed, 0x7E4A), tenants, 1.1)
		sampleTenant = z.Next
	default:
		r := rng.NewStream(seed, 0x7E4A)
		sampleTenant = func() int { return r.Intn(tenants) }
	}
	reqs := make([]request, 0, len(arrivals))
	for _, a := range arrivals {
		q := a.Job.Procs
		if q > m {
			q = m
		}
		deadline := resd.NoDeadline
		if slack > 0 {
			deadline = a.At + slack
		}
		reqs = append(reqs, request{ready: a.At, q: q, dur: a.Job.Len, deadline: deadline, tenant: sampleTenant()})
	}
	return reqs, nil
}

// maxWidth caps generated widths so requests stay admissible under the α
// floor (width + ⌊α·m⌋ <= m).
func maxWidth(alpha float64) float64 {
	w := 1 - alpha
	if w <= 0 {
		w = 0.01
	}
	return w
}

func horizonOf(reqs []request) core.Time {
	h := core.Time(1)
	for _, r := range reqs {
		if end := r.ready + r.dur; end > h {
			h = end
		}
	}
	return h
}

// tenantCounts tallies one tenant's outcomes.
type tenantCounts struct {
	reqs, admitted, rejAlpha, rejDeadline, rejQuota, errored int
}

// result is one replay's outcome. Rejections (the α rule, a deadline or a
// tenant quota saying no, by design) are kept strictly apart from hard
// errors (protocol failures, closed services): conflating them hides real
// failures inside expected load shedding.
//
// lats, slacks and latTenant are parallel flat buffers — sample i's
// latency, start-time slack (admitted start − ready, in ticks) and tenant
// index — preallocated to the stream size before the clients start, so
// the recording path appends without ever allocating; the per-tenant
// percentile buckets are only assembled afterwards, in tenantTable.
type result struct {
	lats             []float64 // per-admission latency, ns
	slacks           []float64 // per-admission start-time slack, ticks
	latTenant        []uint16  // tenant index per latency sample
	admitted         []resd.Reservation
	perTenant        []tenantCounts
	rejectedAlpha    int
	rejectedDeadline int
	rejectedQuota    int
	errored          int
	firstErr         error
	elapsed          time.Duration
}

// classify buckets one Reserve outcome.
func classify(err error) (alphaRej, deadlineRej, quotaRej, hard bool) {
	switch {
	case err == nil:
		return false, false, false, false
	case errors.Is(err, resd.ErrQuota):
		return false, false, true, false
	case errors.Is(err, resd.ErrDeadline):
		return false, true, false, false
	case errors.Is(err, resd.ErrNeverFits):
		return true, false, false, false
	default:
		return false, false, false, true
	}
}

// progress is the live view of a replay the -statsevery ticker prints
// from while the clients are still running: lock-free counters bumped on
// the hot path and an exponential-bucket latency histogram, the same
// O(1) sketch the service itself exposes, so sampling it mid-run costs
// the clients nothing. A nil *progress (the default, -statsevery 0) makes
// every method a no-op.
type progress struct {
	admitted atomic.Uint64
	rejected atomic.Uint64
	errored  atomic.Uint64
	lat      obs.Histogram
}

// record folds one request outcome into the live counters.
func (p *progress) record(lat time.Duration, err error) {
	if p == nil {
		return
	}
	p.lat.Observe(int64(lat))
	switch _, _, _, hard := classify(err); {
	case err == nil:
		p.admitted.Add(1)
	case hard:
		p.errored.Add(1)
	default:
		p.rejected.Add(1)
	}
}

// line renders one progress row: cumulative outcomes, the p99 of every
// round trip so far and the achieved aggregate rate.
func (p *progress) line(elapsed time.Duration) string {
	done := p.admitted.Load() + p.rejected.Load() + p.errored.Load()
	return fmt.Sprintf("resload: %8v  %d admitted, %d rejected, %d errors, p99=%v (%.0f req/s)",
		elapsed.Round(10*time.Millisecond), p.admitted.Load(), p.rejected.Load(), p.errored.Load(),
		time.Duration(p.lat.Quantile(0.99)).Round(time.Microsecond),
		float64(done)/elapsed.Seconds())
}

// watchLine renders one server-pushed telemetry frame as a progress row:
// the remote-mode counterpart of progress.line, except every number is
// the server's own cumulative view (including work from other load
// generators) and queue depth is visible. seq/drop expose the
// subscription itself — drop>0 means this process read frames too
// slowly and the server coalesced.
func watchLine(elapsed time.Duration, t reswire.Telemetry) string {
	var admitted, cancelled, rejected uint64
	var active, queued int
	for i := range t.Shards {
		st := &t.Shards[i]
		admitted += st.Admitted
		cancelled += st.Cancelled
		rejected += st.Rejected + st.RejectedDeadline + st.RejectedQuota
		active += st.Active
		if i < len(t.Queue) {
			queued += t.Queue[i]
		}
	}
	return fmt.Sprintf("resload: %8v  server: %d admitted, %d cancelled, %d rejected, %d active, %d queued, %d traced (seq=%d drop=%d)",
		elapsed.Round(10*time.Millisecond), admitted, cancelled, rejected,
		active, queued, t.TracesSampled, t.Seq, t.Dropped)
}

// replay pushes the request stream through the admitter from the given
// number of client goroutines, pacing the aggregate at rate requests per
// second when positive. names[req.tenant] attributes each request — the
// same table run() built the quota registry from, passed in rather than
// re-derived so attribution and enforcement can never disagree. A
// positive statsevery prints a live progress row to stderr at that
// period until the stream drains.
func replay(svc admitter, reqs []request, names []string, clients int, rate, cancelfrac float64, seed uint64, statsevery time.Duration) result {
	work := make(chan request, 4*clients)
	perClient := make([]result, clients)
	for c := range perClient {
		// Preallocate the recording buffers to the whole stream: the work
		// channel does not promise an even split, and a per-request append
		// that grows mid-run would allocate exactly where latency is being
		// measured.
		perClient[c].lats = make([]float64, 0, len(reqs))
		perClient[c].slacks = make([]float64, 0, len(reqs))
		perClient[c].latTenant = make([]uint16, 0, len(reqs))
		perClient[c].perTenant = make([]tenantCounts, len(names))
	}
	var prog *progress
	if statsevery > 0 {
		prog = &progress{}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &perClient[c]
			r := rng.NewStream(seed, uint64(c))
			var held []resd.Reservation
			for req := range work {
				tc := &res.perTenant[req.tenant]
				tc.reqs++
				t0 := time.Now()
				resv, err := svc.Admit(resd.Request{
					Tenant: names[req.tenant], Ready: req.ready, Q: req.q,
					Dur: req.dur, Deadline: req.deadline,
				})
				lat := time.Since(t0)
				prog.record(lat, err)
				if alphaRej, deadlineRej, quotaRej, hard := classify(err); err != nil {
					switch {
					case alphaRej:
						res.rejectedAlpha++
						tc.rejAlpha++
					case deadlineRej:
						res.rejectedDeadline++
						tc.rejDeadline++
					case quotaRej:
						res.rejectedQuota++
						tc.rejQuota++
					case hard:
						res.errored++
						tc.errored++
						if res.firstErr == nil {
							res.firstErr = err
						}
					}
					continue
				}
				res.lats = append(res.lats, float64(lat))
				res.slacks = append(res.slacks, float64(resv.Start-req.ready))
				res.latTenant = append(res.latTenant, uint16(req.tenant))
				res.admitted = append(res.admitted, resv)
				tc.admitted++
				held = append(held, resv)
				if r.Bool(cancelfrac) {
					k := r.Intn(len(held))
					if err := svc.Cancel(held[k].ID); err == nil {
						held[k] = held[len(held)-1]
						held = held[:len(held)-1]
					}
				}
			}
		}(c)
	}

	start := time.Now()
	if prog != nil {
		stop := make(chan struct{})
		var tickWG sync.WaitGroup
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			tick := time.NewTicker(statsevery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					fmt.Fprintln(os.Stderr, prog.line(time.Since(start)))
				}
			}
		}()
		defer func() { close(stop); tickWG.Wait() }()
	}
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		next := start
		for _, req := range reqs {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			work <- req
			next = next.Add(interval)
		}
	} else {
		for _, req := range reqs {
			work <- req
		}
	}
	close(work)
	wg.Wait()

	total := result{perTenant: make([]tenantCounts, len(names))}
	total.elapsed = time.Since(start)
	for c := range perClient {
		pc := &perClient[c]
		total.lats = append(total.lats, pc.lats...)
		total.slacks = append(total.slacks, pc.slacks...)
		total.latTenant = append(total.latTenant, pc.latTenant...)
		total.admitted = append(total.admitted, pc.admitted...)
		total.rejectedAlpha += pc.rejectedAlpha
		total.rejectedDeadline += pc.rejectedDeadline
		total.rejectedQuota += pc.rejectedQuota
		total.errored += pc.errored
		for i := range pc.perTenant {
			total.perTenant[i].reqs += pc.perTenant[i].reqs
			total.perTenant[i].admitted += pc.perTenant[i].admitted
			total.perTenant[i].rejAlpha += pc.perTenant[i].rejAlpha
			total.perTenant[i].rejDeadline += pc.perTenant[i].rejDeadline
			total.perTenant[i].rejQuota += pc.perTenant[i].rejQuota
			total.perTenant[i].errored += pc.perTenant[i].errored
		}
		if total.firstErr == nil {
			total.firstErr = pc.firstErr
		}
	}
	return total
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resload:", err)
		os.Exit(1)
	}
}
