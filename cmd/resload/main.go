// Command resload is the load generator for the internal/resd
// reservation-admission service: it replays a synthetic or SWF-derived
// request stream against an in-process sharded service at a target rate
// and reports admission throughput and latency percentiles — the
// operational view of the paper's admission rule under heavy concurrent
// traffic.
//
// Usage:
//
//	resload -shards 4 -m 64 -n 20000 -placement p2c -backend tree
//	resload -swf trace.swf -shards 8 -alpha 0.5 -rate 50000
//	resload -shards 1 -clients 16 -cancelfrac 0.8       # churn-heavy
//
// Each request asks for the earliest admissible slot at or after its
// arrival time; -cancelfrac controls how much of the admitted load is
// cancelled again by the clients, which keeps the shard indexes at a
// steady state instead of growing without bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run() error {
	shards := flag.Int("shards", 4, "cluster partitions")
	m := flag.Int("m", 64, "processors per partition")
	n := flag.Int("n", 10000, "number of reservation requests")
	nres := flag.Int("nres", 0, "pre-existing reservations per shard (maintenance windows)")
	alpha := flag.Float64("alpha", 0.5, "α admission rule: ⌊α·m⌋ processors stay free per shard")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	placement := flag.String("placement", "least-loaded", "shard routing policy (first-fit, least-loaded, p2c)")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	rate := flag.Float64("rate", 0, "target request rate per second (0 = unthrottled)")
	cancelfrac := flag.Float64("cancelfrac", 0.5, "fraction of admissions the clients cancel again")
	batch := flag.Int("batch", 64, "max requests group-committed per event-loop turn")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	swf := flag.String("swf", "", "SWF trace file (overrides synthetic generation)")
	flag.Parse()

	if err := cliflag.First(
		cliflag.Positive("shards", *shards),
		cliflag.Positive("m", *m),
		cliflag.Positive("n", *n),
		cliflag.NonNegative("nres", *nres),
		cliflag.Unit("alpha", *alpha),
		cliflag.Positive("clients", *clients),
		cliflag.NonNegativeF("rate", *rate),
		cliflag.Unit("cancelfrac", *cancelfrac),
		cliflag.Positive("batch", *batch),
	); err != nil {
		return err
	}
	if *nres > 0 {
		if err := cliflag.PositiveUnit("alpha", *alpha); err != nil {
			return fmt.Errorf("%w (α must be positive when -nres > 0)", err)
		}
	}

	reqs, err := requestStream(*swf, *m, *n, *alpha, *seed)
	if err != nil {
		return err
	}

	var pre []core.Reservation
	if *nres > 0 {
		pre = workload.ReservationStream(rng.New(*seed^0xBEEF), *m, *alpha, *nres, horizonOf(reqs))
	}
	svc, err := resd.New(resd.Config{
		Shards: *shards, M: *m, Alpha: *alpha, Backend: *backend,
		Placement: *placement, Batch: *batch, Seed: *seed, Pre: pre,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	fmt.Printf("resload: %d requests, %d shards × m=%d (α=%.2f, floor %d), backend %s, placement %s, %d clients\n",
		len(reqs), *shards, *m, *alpha, svc.Floor(), *backend, *placement, *clients)

	lat, elapsed, rejected := replay(svc, reqs, *clients, *rate, *cancelfrac, *seed)

	sort.Float64s(lat)
	admitted := len(lat)
	fmt.Printf("\n%d admitted, %d rejected in %v (%.0f req/s achieved",
		admitted, rejected, elapsed.Round(time.Millisecond), float64(len(reqs))/elapsed.Seconds())
	if *rate > 0 {
		fmt.Printf(", target %.0f", *rate)
	}
	fmt.Println(")")

	if admitted > 0 {
		tbl := stats.NewTable("metric", "latency")
		for _, p := range []struct {
			label string
			p     float64
		}{{"p50", 50}, {"p90", 90}, {"p99", 99}} {
			tbl.AddRow(p.label, time.Duration(stats.Percentile(lat, p.p)).Round(time.Microsecond).String())
		}
		tbl.AddRow("max", time.Duration(stats.MaxFloat(lat)).Round(time.Microsecond).String())
		fmt.Print(tbl.String())
	}

	shtbl := stats.NewTable("shard", "active", "area", "admitted", "cancelled", "batches", "ops/batch")
	for i, st := range svc.Stats() {
		opb := 0.0
		if st.Batches > 0 {
			opb = float64(st.Ops) / float64(st.Batches)
		}
		shtbl.AddRow(i, st.Active, st.CommittedArea, int64(st.Admitted), int64(st.Cancelled),
			int64(st.Batches), fmt.Sprintf("%.2f", opb))
	}
	fmt.Print(shtbl.String())
	return nil
}

// request is one generated admission request.
type request struct {
	ready core.Time
	q     int
	dur   core.Time
}

// requestStream derives the request stream: each workload arrival becomes
// "earliest admissible slot of q processors for dur ticks at or after the
// arrival instant".
func requestStream(swf string, m, n int, alpha float64, seed uint64) ([]request, error) {
	var arrivals []workload.Arrival
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.ParseSWF(f)
		if err != nil {
			return nil, err
		}
		if tr.MaxProcs > 0 && tr.MaxProcs < m {
			m = tr.MaxProcs
		}
		arrivals, err = tr.Arrivals(m)
		if err != nil {
			return nil, err
		}
		if len(arrivals) > n {
			arrivals = arrivals[:n]
		}
	} else {
		var err error
		arrivals, err = workload.Synthetic(rng.New(seed), workload.SynthConfig{
			M: m, N: n, MaxWidthFrac: maxWidth(alpha),
		})
		if err != nil {
			return nil, err
		}
	}
	reqs := make([]request, 0, len(arrivals))
	for _, a := range arrivals {
		q := a.Job.Procs
		if q > m {
			q = m
		}
		reqs = append(reqs, request{ready: a.At, q: q, dur: a.Job.Len})
	}
	return reqs, nil
}

// maxWidth caps generated widths so requests stay admissible under the α
// floor (width + ⌊α·m⌋ <= m).
func maxWidth(alpha float64) float64 {
	w := 1 - alpha
	if w <= 0 {
		w = 0.01
	}
	return w
}

func horizonOf(reqs []request) core.Time {
	h := core.Time(1)
	for _, r := range reqs {
		if end := r.ready + r.dur; end > h {
			h = end
		}
	}
	return h
}

// replay pushes the request stream through the service from the given
// number of client goroutines, pacing the aggregate at rate requests per
// second when positive, and returns per-admission latencies (ns, as
// float64 for the stats helpers), the wall time, and the rejected count.
func replay(svc *resd.Service, reqs []request, clients int, rate, cancelfrac float64, seed uint64) ([]float64, time.Duration, int) {
	work := make(chan request, 4*clients)
	lats := make([][]float64, clients)
	rejects := make([]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.NewStream(seed, uint64(c))
			var held []resd.Reservation
			for req := range work {
				t0 := time.Now()
				resv, err := svc.Reserve(req.ready, req.q, req.dur)
				lat := time.Since(t0)
				if err != nil {
					rejects[c]++
					continue
				}
				lats[c] = append(lats[c], float64(lat))
				held = append(held, resv)
				if r.Bool(cancelfrac) {
					k := r.Intn(len(held))
					if err := svc.Cancel(held[k].ID); err == nil {
						held[k] = held[len(held)-1]
						held = held[:len(held)-1]
					}
				}
			}
		}(c)
	}

	start := time.Now()
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		next := start
		for _, req := range reqs {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			work <- req
			next = next.Add(interval)
		}
	} else {
		for _, req := range reqs {
			work <- req
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	rejected := 0
	for c := 0; c < clients; c++ {
		all = append(all, lats[c]...)
		rejected += rejects[c]
	}
	return all, elapsed, rejected
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resload:", err)
		os.Exit(1)
	}
}
