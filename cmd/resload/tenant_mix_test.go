package main

import (
	"testing"

	"repro/internal/resd"
	"repro/internal/tenant"
)

// TestTenantAssignmentSkew checks the two popularity laws and that the
// tenant mix never perturbs the workload shape (same seed → same
// ready/q/dur stream, whatever the tenant count or skew).
func TestTenantAssignmentSkew(t *testing.T) {
	base, err := requestStream("", 32, 2000, 0.25, 9, 0, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	for _, skew := range []string{"uniform", "zipf"} {
		reqs, err := requestStream("", 32, 2000, 0.25, 9, 0, 8, skew)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 8)
		for i, r := range reqs {
			if r.ready != base[i].ready || r.q != base[i].q || r.dur != base[i].dur {
				t.Fatalf("%s: request %d shape diverged from single-tenant stream", skew, i)
			}
			if r.tenant < 0 || r.tenant >= 8 {
				t.Fatalf("%s: tenant index %d", skew, r.tenant)
			}
			counts[r.tenant]++
		}
		switch skew {
		case "uniform":
			for ti, c := range counts {
				if c < 150 || c > 350 {
					t.Fatalf("uniform: tenant %d got %d of 2000 (counts %v)", ti, c, counts)
				}
			}
		case "zipf":
			// zipf(1.1) over 8 ranks puts ~36% on rank 0 and a long tail.
			if counts[0] < 500 || counts[0] < 3*counts[7] {
				t.Fatalf("zipf: head not heavy enough: %v", counts)
			}
		}
	}
}

// TestReplayPerTenantBreakdown replays a hand-built stream where tenant
// t1 is budget-starved and checks the per-tenant tallies and the parallel
// latency/tenant recording buffers.
func TestReplayPerTenantBreakdown(t *testing.T) {
	reg, err := tenant.New(10000, tenant.Spec{Tenants: []tenant.TenantSpec{
		{Name: "t0", Share: 1},
		{Name: "t1", Share: 0.001}, // budget 10: every area-40 request quota-rejects
	}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := resd.New(resd.Config{M: 8, Quotas: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	reqs := []request{
		{ready: 0, q: 4, dur: 10, deadline: resd.NoDeadline, tenant: 0},
		{ready: 0, q: 4, dur: 10, deadline: resd.NoDeadline, tenant: 1}, // quota reject
		{ready: 0, q: 4, dur: 10, deadline: resd.NoDeadline, tenant: 0},
		{ready: 0, q: 4, dur: 10, deadline: resd.NoDeadline, tenant: 1}, // quota reject
	}
	res := replay(svc, reqs, tenantNames(2), 1, 0, 0, 1, 0)
	if res.errored != 0 {
		t.Fatalf("hard errors: %v", res.firstErr)
	}
	if len(res.admitted) != 2 || res.rejectedQuota != 2 {
		t.Fatalf("admitted=%d rejectedQuota=%d, want 2/2", len(res.admitted), res.rejectedQuota)
	}
	t0, t1 := res.perTenant[0], res.perTenant[1]
	if t0.reqs != 2 || t0.admitted != 2 || t0.rejQuota != 0 {
		t.Fatalf("tenant 0 tallies %+v", t0)
	}
	if t1.reqs != 2 || t1.admitted != 0 || t1.rejQuota != 2 {
		t.Fatalf("tenant 1 tallies %+v", t1)
	}
	if len(res.lats) != len(res.latTenant) {
		t.Fatalf("recording buffers diverged: %d lats, %d tenant indices", len(res.lats), len(res.latTenant))
	}
	for _, ti := range res.latTenant {
		if ti != 0 {
			t.Fatalf("latency sample attributed to tenant %d, only t0 admitted", ti)
		}
	}
	// The summary table renders without panicking even for the
	// admission-less tenant (its percentiles are "-").
	tbl := tenantTable(tenantNames(2), res)
	if tbl == nil || len(tbl.String()) == 0 {
		t.Fatal("empty tenant table")
	}
}
