package main

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/resd"
	"repro/internal/workload"
)

// decision is one request's admission outcome in a serial replay.
type decision struct {
	kind  string // "admit", "alpha", "deadline"
	start core.Time
}

// serialBaseline replays the request stream against a plain
// profile.Timeline with the α-rule's q+floor FindSlot — the sequential
// admission core the sim-layer policies and the FuzzResdAdmission oracle
// are built on — producing the ground-truth decision per request.
func serialBaseline(m, floor int, reqs []request) []decision {
	tl := profile.New(m)
	out := make([]decision, 0, len(reqs))
	for _, r := range reqs {
		if r.q+floor > m {
			out = append(out, decision{kind: "alpha"})
			continue
		}
		start, ok := tl.FindSlot(r.ready, r.q+floor, r.dur)
		if !ok {
			out = append(out, decision{kind: "alpha"})
			continue
		}
		if start > r.deadline {
			out = append(out, decision{kind: "deadline"})
			continue
		}
		if err := tl.Commit(start, r.dur, r.q); err != nil {
			panic(err)
		}
		out = append(out, decision{kind: "admit", start: start})
	}
	return out
}

// TestSWFReplayMatchesSerialBaseline is the trace-replay acceptance test:
// a real SWF trace (committed under testdata, in the Parallel Workloads
// Archive's format) is fed through resload's own request derivation and
// classification against a single-shard service, serially, and every
// admission decision — admit at which start, α-reject, deadline-reject —
// must equal the sequential baseline's. This pins the whole chain
// ParseSWF → Arrivals → requestStream → Admit → classify to the
// offline admission semantics, on both capacity backends.
func TestSWFReplayMatchesSerialBaseline(t *testing.T) {
	const (
		m     = 64
		alpha = 0.25
		slack = 2500 // tight enough that the busy stretches deadline-reject
	)
	if _, err := os.Stat("testdata/sample64.swf"); err != nil {
		t.Fatal(err)
	}
	reqs, err := requestStream("testdata/sample64.swf", m, 1<<20, alpha, 1, slack, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 120 {
		t.Fatalf("parsed %d requests from the trace, want 120", len(reqs))
	}
	floor := int(alpha * m)
	want := serialBaseline(m, floor, reqs)

	for _, backend := range []string{"array", "tree"} {
		t.Run(backend, func(t *testing.T) {
			svc, err := resd.New(resd.Config{M: m, Alpha: alpha, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			var admitted, alphaRej, dlRej int
			for i, r := range reqs {
				resv, err := svc.Admit(resd.Request{Ready: r.ready, Q: r.q, Dur: r.dur, Deadline: r.deadline})
				aRej, dRej, qRej, hard := classify(err)
				switch {
				case hard || qRej:
					t.Fatalf("request %d: unexpected outcome %v", i, err)
				case aRej:
					alphaRej++
					if want[i].kind != "alpha" {
						t.Fatalf("request %d α-rejected, baseline says %q", i, want[i].kind)
					}
				case dRej:
					dlRej++
					if want[i].kind != "deadline" {
						t.Fatalf("request %d deadline-rejected, baseline says %q", i, want[i].kind)
					}
				default:
					admitted++
					if want[i].kind != "admit" || resv.Start != want[i].start {
						t.Fatalf("request %d admitted at %v, baseline %q at %v",
							i, resv.Start, want[i].kind, want[i].start)
					}
				}
			}
			// The trace must exercise both accept and reject paths, or the
			// equivalence is vacuous.
			if admitted == 0 || dlRej == 0 {
				t.Fatalf("degenerate trace: %d admitted, %d α-rejected, %d deadline-rejected",
					admitted, alphaRej, dlRej)
			}
			t.Logf("%s: %d admitted, %d α-rejected, %d deadline-rejected — all identical to baseline",
				backend, admitted, alphaRej, dlRej)
		})
	}
}

// TestSWFReplayThroughReplayHarness runs the same trace through the
// actual replay() harness (serial client, no cancels) and checks the
// aggregate tallies against the baseline, closing the gap between the
// per-request loop above and the code path the CLI really runs.
func TestSWFReplayThroughReplayHarness(t *testing.T) {
	const (
		m     = 64
		alpha = 0.25
		slack = 2500
	)
	reqs, err := requestStream("testdata/sample64.swf", m, 1<<20, alpha, 1, slack, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	want := serialBaseline(m, int(alpha*m), reqs)
	wantCounts := map[string]int{}
	for _, d := range want {
		wantCounts[d.kind]++
	}
	svc, err := resd.New(resd.Config{M: m, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res := replay(svc, reqs, []string{""}, 1, 0, 0, 1, 0)
	if res.errored != 0 {
		t.Fatalf("hard errors: %d (first %v)", res.errored, res.firstErr)
	}
	if len(res.admitted) != wantCounts["admit"] || res.rejectedAlpha != wantCounts["alpha"] ||
		res.rejectedDeadline != wantCounts["deadline"] {
		t.Fatalf("replay tallies admit=%d α=%d dl=%d, baseline %v",
			len(res.admitted), res.rejectedAlpha, res.rejectedDeadline, wantCounts)
	}
	for i, d := range filterAdmits(want) {
		if res.admitted[i].Start != d.start {
			t.Fatalf("admission %d at %v, baseline %v", i, res.admitted[i].Start, d.start)
		}
	}
}

func filterAdmits(ds []decision) []decision {
	var out []decision
	for _, d := range ds {
		if d.kind == "admit" {
			out = append(out, d)
		}
	}
	return out
}

// TestParseSWFSampleTrace sanity-checks the committed trace itself: SWF
// header honoured, arrivals ordered, widths within the machine.
func TestParseSWFSampleTrace(t *testing.T) {
	f, err := os.Open("testdata/sample64.swf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.ParseSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 64 || len(tr.Jobs) != 120 {
		t.Fatalf("MaxProcs=%d jobs=%d", tr.MaxProcs, len(tr.Jobs))
	}
	arr, err := tr.Arrivals(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	for _, a := range arr {
		if a.Job.Procs < 1 || a.Job.Procs > 64 || a.Job.Len < 1 {
			t.Fatalf("bad job %+v", a.Job)
		}
	}
}
