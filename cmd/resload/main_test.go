package main

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/tenant"
)

func TestClassifySeparatesRejectionsFromErrors(t *testing.T) {
	cases := []struct {
		name                               string
		err                                error
		alphaRej, dlRej, quotaRej, hardErr bool
	}{
		{"success", nil, false, false, false, false},
		{"alpha rejection", fmt.Errorf("wrapped: %w", resd.ErrNeverFits), true, false, false, false},
		{"deadline rejection", fmt.Errorf("wrapped: %w", resd.ErrDeadline), false, true, false, false},
		{"quota rejection", fmt.Errorf("wrapped: %w", resd.ErrQuota), false, false, true, false},
		{"quota rejection via tenant sentinel", fmt.Errorf("w: %w", tenant.ErrQuota), false, false, true, false},
		{"closed service", resd.ErrClosed, false, false, false, true},
		{"bad request", resd.ErrBadRequest, false, false, false, true},
		{"client death", reswire.ErrClientClosed, false, false, false, true},
		{"unknown", errors.New("socket exploded"), false, false, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, d, q, h := classify(c.err)
			if a != c.alphaRej || d != c.dlRej || q != c.quotaRej || h != c.hardErr {
				t.Errorf("classify(%v) = (α=%v, dl=%v, q=%v, hard=%v), want (%v, %v, %v, %v)",
					c.err, a, d, q, h, c.alphaRej, c.dlRej, c.quotaRej, c.hardErr)
			}
		})
	}
}

func TestReplayCountsRejectionsSeparately(t *testing.T) {
	// m=8, α=0.5 admits at most q=4: the q=6 request α-rejects, the
	// tight-deadline request deadline-rejects, the rest admit.
	svc, err := resd.New(resd.Config{M: 8, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []request{
		{ready: 0, q: 4, dur: 100, deadline: resd.NoDeadline},
		{ready: 0, q: 6, dur: 10, deadline: resd.NoDeadline}, // α-rule rejection
		{ready: 0, q: 4, dur: 10, deadline: 50},              // earliest start 100 > 50
		{ready: 0, q: 4, dur: 10, deadline: resd.NoDeadline}, // admitted at 100
	}
	res := replay(svc, reqs, []string{""}, 1, 0, 0, 1, 0)
	if len(res.admitted) != 2 || res.rejectedAlpha != 1 || res.rejectedDeadline != 1 || res.errored != 0 {
		t.Fatalf("admitted=%d rejectedα=%d rejectedDL=%d errored=%d, want 2/1/1/0",
			len(res.admitted), res.rejectedAlpha, res.rejectedDeadline, res.errored)
	}
	// A closed service produces hard errors, not rejections.
	svc.Close()
	res = replay(svc, reqs[:1], []string{""}, 1, 0, 0, 1, 0)
	if res.errored != 1 || res.rejectedAlpha != 0 || res.rejectedDeadline != 0 {
		t.Fatalf("closed service: errored=%d rejectedα=%d rejectedDL=%d, want 1/0/0", res.errored, res.rejectedAlpha, res.rejectedDeadline)
	}
	if !errors.Is(res.firstErr, resd.ErrClosed) {
		t.Fatalf("firstErr = %v, want ErrClosed", res.firstErr)
	}
}

// TestProgressLine pins the -statsevery row: record buckets outcomes the
// way the summary does (rejections apart from hard errors), the p99 is a
// sane upper bound on the observed latencies, and a nil progress is a
// no-op so the uninstrumented hot path stays free.
func TestProgressLine(t *testing.T) {
	var p progress
	p.record(time.Millisecond, nil)
	p.record(2*time.Millisecond, resd.ErrDeadline)
	p.record(time.Millisecond, resd.ErrNeverFits)
	p.record(3*time.Millisecond, resd.ErrClosed)
	line := p.line(time.Second)
	for _, want := range []string{"1 admitted", "2 rejected", "1 errors", "p99=", "req/s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	if p99 := p.lat.Quantile(0.99); p99 < int64(3*time.Millisecond) || p99 >= int64(6*time.Millisecond) {
		t.Errorf("p99 = %v, want in [3ms, 6ms)", time.Duration(p99))
	}
	var nilProg *progress
	nilProg.record(time.Millisecond, nil) // must not panic
}

// TestReplayWithStatsevery exercises the live ticker path end to end: a
// paced replay with a tiny period must finish cleanly (the ticker stops
// with the stream) and count exactly as the unticked run does.
func TestReplayWithStatsevery(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	reqs := make([]request, 50)
	for i := range reqs {
		reqs[i] = request{ready: core.Time(i), q: 2, dur: 5, deadline: resd.NoDeadline}
	}
	res := replay(svc, reqs, []string{""}, 2, 0, 0, 1, 100*time.Microsecond)
	if len(res.admitted) != len(reqs) || res.errored != 0 {
		t.Fatalf("admitted=%d errored=%d, want %d/0", len(res.admitted), res.errored, len(reqs))
	}
}

// TestRemoteReplayMatchesInProcess is the wire-equivalence acceptance
// check: the same synthetic stream replayed serially (one client) against
// an in-process service and against an identically configured service
// behind a resdsrv-style loopback server must produce exactly the same
// accepted placements — IDs, shards, start times — and the same rejection
// tallies. The wire layer may batch and reorder in flight, but with one
// serial caller it must be observationally identical to a function call.
func TestRemoteReplayMatchesInProcess(t *testing.T) {
	const (
		m     = 32
		n     = 600
		alpha = 0.25
		seed  = 7
		slack = 400 // tight enough that some requests deadline-reject
	)
	cfg := resd.Config{Shards: 4, M: m, Alpha: alpha, Backend: "tree", Placement: "least-loaded", Seed: 3}
	reqs, err := requestStream("", m, n, alpha, seed, slack, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}

	// In-process run.
	direct, err := resd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want := replay(direct, reqs, []string{""}, 1, 0, 0.4, seed, 0)

	// Identical service behind the wire.
	remoteSvc, err := resd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSvc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := reswire.NewServer(remoteSvc)
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln) }()
	defer func() { srv.Close(); <-serveDone }()

	client, err := reswire.Dial(ln.Addr().String(), reswire.Options{Conns: 1, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got := replay(client, reqs, []string{""}, 1, 0, 0.4, seed, 0)

	if got.errored != 0 || want.errored != 0 {
		t.Fatalf("hard errors: remote %d (first %v), direct %d (first %v)",
			got.errored, got.firstErr, want.errored, want.firstErr)
	}
	if len(want.admitted) == 0 || want.rejectedDeadline == 0 {
		t.Fatalf("degenerate stream: %d admitted, %d deadline rejections — tune the test workload",
			len(want.admitted), want.rejectedDeadline)
	}
	if got.rejectedAlpha != want.rejectedAlpha || got.rejectedDeadline != want.rejectedDeadline {
		t.Errorf("rejections diverged: remote α=%d dl=%d, direct α=%d dl=%d",
			got.rejectedAlpha, got.rejectedDeadline, want.rejectedAlpha, want.rejectedDeadline)
	}
	if !reflect.DeepEqual(got.admitted, want.admitted) {
		if len(got.admitted) != len(want.admitted) {
			t.Fatalf("admitted counts diverged: remote %d, direct %d", len(got.admitted), len(want.admitted))
		}
		for i := range want.admitted {
			if got.admitted[i] != want.admitted[i] {
				t.Fatalf("placement %d diverged:\nremote %+v\ndirect %+v", i, got.admitted[i], want.admitted[i])
			}
		}
	}
}

func TestRequestStreamAppliesSlack(t *testing.T) {
	withSlack, err := requestStream("", 16, 50, 0.5, 1, 300, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	without, err := requestStream("", 16, 50, 0.5, 1, 0, 1, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	for i := range withSlack {
		if want := withSlack[i].ready + 300; withSlack[i].deadline != want {
			t.Fatalf("request %d deadline = %v, want ready+300 = %v", i, withSlack[i].deadline, want)
		}
		if without[i].deadline != resd.NoDeadline {
			t.Fatalf("request %d without slack has deadline %v", i, without[i].deadline)
		}
	}
}

// TestReplayRecordsSlackPerTenant pins the per-admission slack samples
// and their tenant attribution: the parallel buffers must line up so the
// per-tenant table reports each tenant's own push-back, not a shuffle.
func TestReplayRecordsSlackPerTenant(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Serial (one client): the first fills [0,10), the second is pushed to
	// start 10 — slack 0 for tenant 0, slack 10 for tenant 1.
	reqs := []request{
		{ready: 0, q: 8, dur: 10, deadline: resd.NoDeadline, tenant: 0},
		{ready: 0, q: 8, dur: 10, deadline: resd.NoDeadline, tenant: 1},
	}
	res := replay(svc, reqs, []string{"t0", "t1"}, 1, 0, 0, 1, 0)
	if len(res.slacks) != 2 || len(res.latTenant) != 2 {
		t.Fatalf("recorded %d slacks / %d tenant indexes, want 2/2", len(res.slacks), len(res.latTenant))
	}
	byTenant := map[uint16]float64{}
	for i, s := range res.slacks {
		byTenant[res.latTenant[i]] = s
	}
	if byTenant[0] != 0 || byTenant[1] != 10 {
		t.Fatalf("slack by tenant = %v, want t0:0 t1:10", byTenant)
	}
}

// TestTenantTableUsesUnsortedBuffers pins the table-assembly ordering
// contract: tenantTable consumes the recording buffers positionally, so
// feeding it hand-built parallel data must attribute every sample to its
// own tenant.
func TestTenantTableUsesUnsortedBuffers(t *testing.T) {
	res := result{
		lats:      []float64{5000, 1000, 3000},
		slacks:    []float64{50, 0, 30},
		latTenant: []uint16{1, 0, 1},
		perTenant: make([]tenantCounts, 2),
	}
	tbl := tenantTable([]string{"a", "b"}, res).String()
	// Tenant b's slack-p99 is 50 (its own samples 50 and 30), tenant a's
	// is 0; a shuffled attribution would leak b's samples into a.
	if !strings.Contains(tbl, "50") {
		t.Fatalf("tenant table lost tenant b's slack:\n%s", tbl)
	}
}
