// Root-level benchmark harness: one benchmark per figure/claim of the
// paper, as indexed in DESIGN.md §4. Each benchmark re-runs the registered
// experiment end-to-end (instance construction, scheduling, reference
// optimum, checks) and reports the experiment's headline number as a custom
// metric so `go test -bench=.` output reads like the paper's evaluation:
//
//	BenchmarkFigure3LowerBound    ... ratio=5.1667 (the Figure 3 ratio 31/6)
//
// Scale note: quick-mode grids are used so a full bench sweep stays under a
// minute; `cmd/resexp -run all` runs the full grids.
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/expt"
	"repro/internal/instances"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/threepart"
	"repro/internal/workload"
)

// benchCfg is the shared experiment configuration for benches.
func benchCfg() expt.Config { return expt.Config{Seed: 20070326, Quick: true} }

// runExperiment executes a registered experiment b.N times, failing the
// bench if any paper-vs-measured check fails.
func runExperiment(b *testing.B, id string) *expt.Report {
	b.Helper()
	e, ok := expt.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var last *expt.Report
	for i := 0; i < b.N; i++ {
		r, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllPassed() {
			b.Fatalf("%s: checks failed:\n%s", id, r.Render())
		}
		last = r
	}
	return last
}

// BenchmarkFigure1Theorem1 regenerates Figure 1 / Theorem 1: the
// 3-PARTITION reduction on which LSRC's ratio grows without bound. The
// reported metric is the LSRC-LPT ratio at rho=2 on the fixed hard
// instance.
func BenchmarkFigure1Theorem1(b *testing.B) {
	runExperiment(b, "fig1")
	tp := &threepart.Instance{Items: []int64{12, 10, 10, 10, 9, 9}, B: 30}
	inst, err := instances.FromThreePartition(tp, 2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Makespan())/float64(instances.Theorem1Optimum(tp)), "ratio@rho=2")
}

// BenchmarkFigure2NonIncreasing regenerates Proposition 1 / Figure 2:
// random non-increasing staircases never push LSRC beyond
// (2 - 1/m(C*))·C*.
func BenchmarkFigure2NonIncreasing(b *testing.B) {
	runExperiment(b, "fig2")
}

// BenchmarkFigure3LowerBound regenerates Proposition 2 / Figure 3 and
// reports the k=6 ratio (the paper's 31/6).
func BenchmarkFigure3LowerBound(b *testing.B) {
	runExperiment(b, "fig3")
	inst, err := instances.Prop2Instance(6)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Makespan())/float64(instances.Prop2Optimum(6)), "figure3-ratio")
}

// BenchmarkFigure4Bounds regenerates the Figure 4 curves and reports the
// upper/lower gap at α = 1/2.
func BenchmarkFigure4Bounds(b *testing.B) {
	runExperiment(b, "fig4")
	b.ReportMetric(bounds.Gap(0.5), "gap@alpha=0.5")
}

// BenchmarkGrahamBound regenerates Theorem 2 (appendix): the 2 - 1/m
// guarantee, tight on the adversarial family.
func BenchmarkGrahamBound(b *testing.B) {
	runExperiment(b, "graham")
	b.ReportMetric(bounds.Graham(8), "bound@m=8")
}

// BenchmarkFCFSNoGuarantee regenerates the §2.2 remark: FCFS ratio
// approaches m. Reports the measured FCFS ratio at m=6, D=1000.
func BenchmarkFCFSNoGuarantee(b *testing.B) {
	runExperiment(b, "fcfs")
	m, d := 6, core.Time(1000)
	ratio := float64(instances.FCFSPathologicalMakespan(m, d)) /
		float64(instances.FCFSPathologicalOptimum(m, d))
	b.ReportMetric(ratio, "fcfs-ratio@m=6")
}

// BenchmarkAlphaSweep regenerates the Proposition 3 sweep: empirical LSRC
// ratios vs the 2/α guarantee across the α grid.
func BenchmarkAlphaSweep(b *testing.B) {
	runExperiment(b, "alpha")
	b.ReportMetric(bounds.AlphaUpper(0.5), "guarantee@alpha=0.5")
}

// BenchmarkPriorityAblation regenerates the conclusion's ablation: priority
// rules and shelf packing on realistic workloads.
func BenchmarkPriorityAblation(b *testing.B) {
	runExperiment(b, "ablation")
}

// BenchmarkOnlineBatch regenerates the §2.1 batch-doubling claim.
func BenchmarkOnlineBatch(b *testing.B) {
	runExperiment(b, "online")
}

// BenchmarkAdversarialSearch runs the extension experiment that hill-climbs
// for worst-case LSRC ratios on small α-restricted instances.
func BenchmarkAdversarialSearch(b *testing.B) {
	runExperiment(b, "search")
}

// BenchmarkScaleSweep runs the implementation-scale experiment (LSRC
// quality and throughput at growing m and n).
func BenchmarkScaleSweep(b *testing.B) {
	runExperiment(b, "scale")
}

// --- micro-benchmarks of the core machinery at realistic scale ---

// BenchmarkLSRCLargeWorkload measures offline LSRC throughput on a
// 1024-processor cluster with 5000 synthetic jobs and reservations.
func BenchmarkLSRCLargeWorkload(b *testing.B) {
	r := rng.New(1)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 1024, N: 5000, MinRun: 10, MaxRun: 5000, MaxWidthFrac: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst.Res = workload.ReservationStream(r.Split(), 1024, 0.5, 50, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan() == 0 {
			b.Fatal("empty schedule")
		}
	}
	b.ReportMetric(float64(len(inst.Jobs)), "jobs")
}

// BenchmarkBackfillVariantsLargeWorkload compares the policies' cost on a
// shared 512-proc workload.
func BenchmarkBackfillVariantsLargeWorkload(b *testing.B) {
	r := rng.New(2)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 512, N: 2000, MinRun: 10, MaxRun: 2000, MaxWidthFrac: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range []sched.Scheduler{
		sched.NewLSRC(sched.FIFO), sched.FCFS{}, sched.Conservative{}, sched.EASY{},
		&sched.Shelf{Fit: sched.FirstFit},
	} {
		b.Run(sc.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sc.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- capacity-index backend comparison (array Timeline vs restree) ---

// capacityBenchSizes are the pre-loaded reservation counts for the
// backend comparison (the BENCH_restree.json trajectory).
var capacityBenchSizes = []int{1_000, 10_000, 100_000}

// capacityBenchM is the machine size for the backend benches: large enough
// that reservation widths vary by three orders of magnitude.
const capacityBenchM = 1024

// loadedIndex builds a capacity index pre-loaded with nRes reservations at
// increasing times (so setup itself stays cheap on the array backend —
// appends, not mid-array inserts) and returns it with the loaded horizon.
// A tenth of the reservations are near-full-machine holds, so wide queries
// see real blocking segments and earliest-fit pruning has work to skip.
func loadedIndex(tb testing.TB, backend string, nRes int) (profile.CapacityIndex, core.Time) {
	tb.Helper()
	idx, err := profile.NewIndex(backend, capacityBenchM)
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xC0FFEE)
	at := core.Time(0)
	for i := 0; i < nRes; i++ {
		at += core.Time(r.Intn(20) + 1)
		length := core.Time(r.Intn(50) + 1)
		q := r.Intn(capacityBenchM/2) + 1
		if i%10 == 0 {
			q = capacityBenchM - r.Intn(8) - 1 // near-full hold
		}
		if err := idx.Commit(at, length, q); err != nil {
			tb.Fatal(err)
		}
		at += length
	}
	return idx, at
}

// earliestFitCommitLoop is one op of the benchmark workload: an
// earliest-fit query from a random ready time followed by a commit at the
// found slot and a release (so the index stays at steady state).
func earliestFitCommitLoop(tb testing.TB, idx profile.CapacityIndex, r *rng.PCG, horizon core.Time) {
	q := r.Intn(capacityBenchM) + 1
	dur := core.Time(r.Intn(100) + 1)
	ready := core.Time(r.Int63n(int64(horizon)))
	s, ok := idx.FindSlot(ready, q, dur)
	if !ok {
		tb.Fatalf("no slot for q=%d", q)
	}
	if err := idx.Commit(s, dur, q); err != nil {
		tb.Fatal(err)
	}
	if err := idx.Release(s, dur, q); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkCapacityIndex compares the two backends on the hot scheduling
// loop — EarliestFit + Commit + Release — at growing reservation counts.
// The array backend pays O(n) per op (linear slot scans, mid-array
// memmoves); the tree backend pays O(log n) plus the blocking segments
// actually skipped, which is the ≥5× win recorded in BENCH_restree.json.
func BenchmarkCapacityIndex(b *testing.B) {
	for _, backend := range []string{"array", "tree"} {
		for _, n := range capacityBenchSizes {
			b.Run(fmt.Sprintf("backend=%s/n=%d", backend, n), func(b *testing.B) {
				idx, horizon := loadedIndex(b, backend, n)
				r := rng.New(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					earliestFitCommitLoop(b, idx, r, horizon)
				}
			})
		}
	}
}

// TestEmitRestreeBenchJSON records the backend comparison as
// BENCH_restree.json at the repository root. It is opt-in (set
// REPRO_EMIT_BENCH=1) because it runs seconds of measured benchmarks.
func TestEmitRestreeBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure backends and write BENCH_restree.json")
	}
	type row struct {
		Reservations int     `json:"reservations"`
		ArrayNsPerOp float64 `json:"array_ns_per_op"`
		TreeNsPerOp  float64 `json:"tree_ns_per_op"`
		Speedup      float64 `json:"speedup"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		M         int    `json:"m"`
		Workload  string `json:"workload"`
		GoVersion string `json:"go_version"`
		Rows      []row  `json:"rows"`
	}{
		Benchmark: "capacity-index backends: array Timeline vs restree balanced tree",
		M:         capacityBenchM,
		Workload:  "EarliestFit + Commit + Release at a random ready time, steady state",
		GoVersion: runtime.Version(),
	}
	measure := func(backend string, n int) float64 {
		idx, horizon := loadedIndex(t, backend, n)
		r := rng.New(7)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				earliestFitCommitLoop(b, idx, r, horizon)
			}
		})
		return float64(res.NsPerOp())
	}
	for _, n := range capacityBenchSizes {
		a, tr := measure("array", n), measure("tree", n)
		out.Rows = append(out.Rows, row{Reservations: n, ArrayNsPerOp: a, TreeNsPerOp: tr, Speedup: a / tr})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_restree.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	last := out.Rows[len(out.Rows)-1]
	t.Logf("wrote BENCH_restree.json; speedup at n=%d: %.1f×", last.Reservations, last.Speedup)
	if last.Speedup < 5 {
		t.Errorf("tree backend is %.1f× the array backend at n=%d, want >= 5×", last.Speedup, last.Reservations)
	}
}

// BenchmarkExactSolver measures the branch-and-bound on a 9-job instance.
func BenchmarkExactSolver(b *testing.B) {
	r := rng.New(3)
	inst := instances.RandomRigid(r, instances.RigidConfig{M: 5, N: 9, MaxLen: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exact.Solve(inst)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal {
			b.Fatal("not optimal")
		}
	}
}
