// Root-level benchmark harness: one benchmark per figure/claim of the
// paper, as indexed in DESIGN.md §4. Each benchmark re-runs the registered
// experiment end-to-end (instance construction, scheduling, reference
// optimum, checks) and reports the experiment's headline number as a custom
// metric so `go test -bench=.` output reads like the paper's evaluation:
//
//	BenchmarkFigure3LowerBound    ... ratio=5.1667 (the Figure 3 ratio 31/6)
//
// Scale note: quick-mode grids are used so a full bench sweep stays under a
// minute; `cmd/resexp -run all` runs the full grids.
package repro

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/expt"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/threepart"
	"repro/internal/workload"
)

// benchCfg is the shared experiment configuration for benches.
func benchCfg() expt.Config { return expt.Config{Seed: 20070326, Quick: true} }

// runExperiment executes a registered experiment b.N times, failing the
// bench if any paper-vs-measured check fails.
func runExperiment(b *testing.B, id string) *expt.Report {
	b.Helper()
	e, ok := expt.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var last *expt.Report
	for i := 0; i < b.N; i++ {
		r, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllPassed() {
			b.Fatalf("%s: checks failed:\n%s", id, r.Render())
		}
		last = r
	}
	return last
}

// BenchmarkFigure1Theorem1 regenerates Figure 1 / Theorem 1: the
// 3-PARTITION reduction on which LSRC's ratio grows without bound. The
// reported metric is the LSRC-LPT ratio at rho=2 on the fixed hard
// instance.
func BenchmarkFigure1Theorem1(b *testing.B) {
	runExperiment(b, "fig1")
	tp := &threepart.Instance{Items: []int64{12, 10, 10, 10, 9, 9}, B: 30}
	inst, err := instances.FromThreePartition(tp, 2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Makespan())/float64(instances.Theorem1Optimum(tp)), "ratio@rho=2")
}

// BenchmarkFigure2NonIncreasing regenerates Proposition 1 / Figure 2:
// random non-increasing staircases never push LSRC beyond
// (2 - 1/m(C*))·C*.
func BenchmarkFigure2NonIncreasing(b *testing.B) {
	runExperiment(b, "fig2")
}

// BenchmarkFigure3LowerBound regenerates Proposition 2 / Figure 3 and
// reports the k=6 ratio (the paper's 31/6).
func BenchmarkFigure3LowerBound(b *testing.B) {
	runExperiment(b, "fig3")
	inst, err := instances.Prop2Instance(6)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Makespan())/float64(instances.Prop2Optimum(6)), "figure3-ratio")
}

// BenchmarkFigure4Bounds regenerates the Figure 4 curves and reports the
// upper/lower gap at α = 1/2.
func BenchmarkFigure4Bounds(b *testing.B) {
	runExperiment(b, "fig4")
	b.ReportMetric(bounds.Gap(0.5), "gap@alpha=0.5")
}

// BenchmarkGrahamBound regenerates Theorem 2 (appendix): the 2 - 1/m
// guarantee, tight on the adversarial family.
func BenchmarkGrahamBound(b *testing.B) {
	runExperiment(b, "graham")
	b.ReportMetric(bounds.Graham(8), "bound@m=8")
}

// BenchmarkFCFSNoGuarantee regenerates the §2.2 remark: FCFS ratio
// approaches m. Reports the measured FCFS ratio at m=6, D=1000.
func BenchmarkFCFSNoGuarantee(b *testing.B) {
	runExperiment(b, "fcfs")
	m, d := 6, core.Time(1000)
	ratio := float64(instances.FCFSPathologicalMakespan(m, d)) /
		float64(instances.FCFSPathologicalOptimum(m, d))
	b.ReportMetric(ratio, "fcfs-ratio@m=6")
}

// BenchmarkAlphaSweep regenerates the Proposition 3 sweep: empirical LSRC
// ratios vs the 2/α guarantee across the α grid.
func BenchmarkAlphaSweep(b *testing.B) {
	runExperiment(b, "alpha")
	b.ReportMetric(bounds.AlphaUpper(0.5), "guarantee@alpha=0.5")
}

// BenchmarkPriorityAblation regenerates the conclusion's ablation: priority
// rules and shelf packing on realistic workloads.
func BenchmarkPriorityAblation(b *testing.B) {
	runExperiment(b, "ablation")
}

// BenchmarkOnlineBatch regenerates the §2.1 batch-doubling claim.
func BenchmarkOnlineBatch(b *testing.B) {
	runExperiment(b, "online")
}

// BenchmarkAdversarialSearch runs the extension experiment that hill-climbs
// for worst-case LSRC ratios on small α-restricted instances.
func BenchmarkAdversarialSearch(b *testing.B) {
	runExperiment(b, "search")
}

// BenchmarkScaleSweep runs the implementation-scale experiment (LSRC
// quality and throughput at growing m and n).
func BenchmarkScaleSweep(b *testing.B) {
	runExperiment(b, "scale")
}

// --- micro-benchmarks of the core machinery at realistic scale ---

// BenchmarkLSRCLargeWorkload measures offline LSRC throughput on a
// 1024-processor cluster with 5000 synthetic jobs and reservations.
func BenchmarkLSRCLargeWorkload(b *testing.B) {
	r := rng.New(1)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 1024, N: 5000, MinRun: 10, MaxRun: 5000, MaxWidthFrac: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst.Res = workload.ReservationStream(r.Split(), 1024, 0.5, 50, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan() == 0 {
			b.Fatal("empty schedule")
		}
	}
	b.ReportMetric(float64(len(inst.Jobs)), "jobs")
}

// BenchmarkBackfillVariantsLargeWorkload compares the policies' cost on a
// shared 512-proc workload.
func BenchmarkBackfillVariantsLargeWorkload(b *testing.B) {
	r := rng.New(2)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 512, N: 2000, MinRun: 10, MaxRun: 2000, MaxWidthFrac: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range []sched.Scheduler{
		sched.NewLSRC(sched.FIFO), sched.FCFS{}, sched.Conservative{}, sched.EASY{},
		&sched.Shelf{Fit: sched.FirstFit},
	} {
		b.Run(sc.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sc.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactSolver measures the branch-and-bound on a 9-job instance.
func BenchmarkExactSolver(b *testing.B) {
	r := rng.New(3)
	inst := instances.RandomRigid(r, instances.RigidConfig{M: 5, N: 9, MaxLen: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exact.Solve(inst)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal {
			b.Fatal("not optimal")
		}
	}
}
