// Adversarial gallery: materialise the paper's worst-case families and
// measure exactly the ratios the theory predicts —
//
//  1. Proposition 2's family (Figure 3): LSRC ratio = 2/α - 1 + α/2;
//  2. the Theorem 1 reduction: a fixed instance whose LSRC-LPT ratio grows
//     without bound as the hypothetical guarantee ρ grows;
//  3. the §2.2 FCFS family: FCFS ratio approaching m while LSRC is optimal.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gantt"
	"repro/internal/instances"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/threepart"
)

func main() {
	prop2()
	theorem1()
	fcfs()
}

func prop2() {
	fmt.Println("— Proposition 2 family (Figure 3) —")
	t := stats.NewTable("k", "alpha", "m", "C*", "LSRC-FIFO", "ratio", "2/α-1+α/2", "LSRC-LPT")
	for _, k := range []int{3, 4, 6, 8} {
		inst, err := instances.Prop2Instance(k)
		if err != nil {
			log.Fatal(err)
		}
		fifo, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			log.Fatal(err)
		}
		lpt, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			log.Fatal(err)
		}
		opt := instances.Prop2Optimum(k)
		alpha := instances.Prop2Alpha(k)
		t.AddRow(k, fmt.Sprintf("%.3f", alpha), inst.M, int64(opt), int64(fifo.Makespan()),
			fmt.Sprintf("%.4f", float64(fifo.Makespan())/float64(opt)),
			fmt.Sprintf("%.4f", bounds.Prop2(alpha)),
			int64(lpt.Makespan()))
	}
	fmt.Println(t)
	fmt.Println("k=6 is the paper's Figure 3: m=180, C*=6, LSRC=31. LPT defuses the family.")

	// Draw the k=3 member small enough to read.
	inst, _ := instances.Prop2Instance(3)
	s, _ := sched.NewLSRC(sched.FIFO).Schedule(inst)
	chart, err := gantt.ASCII(s, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
}

func theorem1() {
	fmt.Println("— Theorem 1 reduction (Figure 1) —")
	tp := &threepart.Instance{Items: []int64{12, 10, 10, 10, 9, 9}, B: 30}
	t := stats.NewTable("rho", "C* (exact)", "wall", "LSRC-LPT", "ratio")
	for _, rho := range []int{1, 2, 4, 8} {
		inst, err := instances.FromThreePartition(tp, rho)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exact.SolveM1(inst)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(rho, int64(res.Cmax), int64(instances.Theorem1Wall(tp, rho)),
			int64(s.Makespan()),
			fmt.Sprintf("%.2f", float64(s.Makespan())/float64(res.Cmax)))
	}
	fmt.Println(t)
	fmt.Println("the ratio exceeds every hypothetical guarantee ρ: no finite guarantee exists.")
	fmt.Println()
}

func fcfs() {
	fmt.Println("— §2.2 FCFS pathological family —")
	t := stats.NewTable("m", "D", "C*", "FCFS", "LSRC", "FCFS ratio")
	for _, m := range []int{4, 8} {
		for _, d := range []core.Time{100, 1000} {
			inst, err := instances.FCFSPathological(m, d)
			if err != nil {
				log.Fatal(err)
			}
			fs, err := (sched.FCFS{}).Schedule(inst)
			if err != nil {
				log.Fatal(err)
			}
			ls, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
			if err != nil {
				log.Fatal(err)
			}
			opt := instances.FCFSPathologicalOptimum(m, d)
			t.AddRow(m, int64(d), int64(opt), int64(fs.Makespan()), int64(ls.Makespan()),
				fmt.Sprintf("%.3f", float64(fs.Makespan())/float64(opt)))
		}
	}
	fmt.Println(t)
	fmt.Println("as D grows the FCFS ratio approaches m; LSRC stays exactly optimal.")
}
