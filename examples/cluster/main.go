// Cluster day: simulate a 64-processor cluster over a synthetic workload
// (power-of-two widths, log-uniform runtimes, Poisson arrivals) with an
// α=1/2 advance-reservation stream, and compare the online policies the
// paper discusses — FCFS, EASY back-filling, and greedy list scheduling —
// on makespan, utilisation, waiting time and bounded slowdown.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		m     = 64
		nJobs = 300
		alpha = 0.5
		seed  = 7
	)
	r := rng.New(seed)
	arrivals, err := workload.Synthetic(r.Split(), workload.SynthConfig{
		M: m, N: nJobs,
		MinRun: 10, MaxRun: 2000,
		MeanInterArrival: 40,
		MaxWidthFrac:     alpha, // α-restricted jobs
	})
	if err != nil {
		log.Fatal(err)
	}
	reservations := workload.ReservationStream(r.Split(), m, alpha, 12, 20000)
	fmt.Printf("cluster: m=%d, %d jobs, %d reservations (α=%.1f admission rule)\n\n",
		m, len(arrivals), len(reservations), alpha)

	table := stats.NewTable("policy", "makespan", "util", "eff-util", "avg wait", "max wait", "avg BSLD")
	for _, p := range []sim.Policy{sim.FCFSPolicy{}, sim.EASYPolicy{}, sim.GreedyPolicy{}} {
		res, err := sim.Run(m, reservations, arrivals, p)
		if err != nil {
			log.Fatal(err)
		}
		mt := res.Metrics
		table.AddRow(mt.Policy, int64(mt.Makespan),
			fmt.Sprintf("%.3f", mt.Utilization),
			fmt.Sprintf("%.3f", mt.EffectiveUtilization),
			fmt.Sprintf("%.1f", mt.AvgWait), int64(mt.MaxWait),
			fmt.Sprintf("%.2f", mt.AvgBoundedSlowdown))
	}
	fmt.Println(table)
	fmt.Println("FCFS pays head-of-line blocking; EASY protects the queue head;")
	fmt.Println("greedy LSRC maximises utilisation — and §4 of the paper bounds its")
	fmt.Println("makespan by 2/α × optimal under this reservation admission rule.")
}
