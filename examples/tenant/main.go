// Tenant walkthrough: put a quota registry in front of the sharded
// admission service (internal/tenant + internal/resd), watch a greedy
// tenant exhaust its budgeted share of the reservable α-prefix while a
// polite tenant keeps admitting, re-budget at runtime, and compare the
// hard and soft enforcement modes.
//
// Run with: go run ./examples/tenant
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/tenant"
)

func main() {
	// A cluster of two 32-processor partitions under the paper's α = 1/2
	// rule: each shard keeps 16 processors free of reservations, so the
	// reservable prefix is 2 × 16 processors wide. Budgets are fractions
	// of that prefix's area over a 1000-tick accounting horizon:
	//
	//	capacity = shards × (m − ⌊α·m⌋) × horizon = 2 × 16 × 1000 = 32000
	//
	// "batch" owns half of it, "interactive" a quarter; tenants nobody
	// declared (there is always a default tenant) get the default share.
	const capacity = 2 * 16 * 1000
	spec := tenant.Spec{
		Mode: "hard",
		Tenants: []tenant.TenantSpec{
			{Name: "batch", Share: 0.5},
			{Name: "interactive", Share: 0.25},
		},
	}
	reg, err := tenant.New(capacity, spec)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := resd.New(resd.Config{Shards: 2, M: 32, Alpha: 0.5, Quotas: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("hard mode: capacity %d processor·ticks, batch budget %d, interactive budget %d\n\n",
		reg.Capacity(), reg.Usage("batch").Budget, reg.Usage("interactive").Budget)

	// The batch tenant floods: 16-wide, 100-tick reservations cost 1600
	// each, so its 16000 budget drains after 10 admissions and the 11th
	// is an explicit REJECTED_QUOTA — the α rule alone would have let it
	// march on and starve everyone.
	var admitted int
	for i := 0; ; i++ {
		_, err := svc.Admit(resd.Request{Tenant: "batch", Ready: core.Time(i * 100), Q: 16, Dur: 100, Deadline: resd.NoDeadline})
		if errors.Is(err, tenant.ErrQuota) {
			fmt.Printf("batch admitted %d holds, then: %v\n", admitted, err)
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		admitted++
	}

	// The interactive tenant is untouched by its neighbour's exhaustion.
	r, err := svc.Admit(resd.Request{Tenant: "interactive", Q: 8, Dur: 50, Deadline: resd.NoDeadline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive still admits: shard %d start %v\n", r.Shard, r.Start)

	// Operators re-budget live (the wire exposes this as QuotaSet): grow
	// batch to 75% and it admits again.
	if err := reg.SetShare("batch", 0.75); err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Admit(resd.Request{Tenant: "batch", Ready: 2000, Q: 16, Dur: 100, Deadline: resd.NoDeadline}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after SetShare(batch, 0.75): batch admits again (used %d of %d)\n\n",
		reg.Usage("batch").Used, reg.Usage("batch").Budget)

	// Soft mode: nothing is rejected; budgets instead order contending
	// admissions by usage-to-budget ratio, DRF-style. The hog tenant
	// (far over its share) and a newcomer race a burst of concurrent
	// Reserves: the newcomer's land first within each group-commit batch,
	// so it takes the earlier start times.
	softReg, err := tenant.New(capacity, tenant.Spec{
		Mode: "soft",
		Tenants: []tenant.TenantSpec{
			{Name: "hog", Share: 0.5},
			{Name: "newcomer", Share: 0.5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	soft, err := resd.New(resd.Config{M: 32, Alpha: 0.5, Quotas: softReg})
	if err != nil {
		log.Fatal(err)
	}
	defer soft.Close()
	for i := 0; i < 12; i++ { // the hog piles up usage far past its share
		if _, err := soft.Admit(resd.Request{Tenant: "hog", Ready: core.Time(i * 100), Q: 16, Dur: 100, Deadline: resd.NoDeadline}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("soft mode: hog ratio %.2f, newcomer ratio %.2f — contended batches serve the lower ratio first\n",
		softReg.Ratio("hog"), softReg.Ratio("newcomer"))
	if _, err := soft.Admit(resd.Request{Tenant: "newcomer", Q: 16, Dur: 100, Deadline: resd.NoDeadline}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("newcomer admitted despite the hog's backlog; hog usage %d vs newcomer %d\n",
		softReg.Usage("hog").Used, softReg.Usage("newcomer").Used)
}
