// Wire walkthrough: serve the sharded reservation-admission service
// (internal/resd) over the reswire protocol on a loopback socket, then
// drive it with the pipelining client — admissions, typed rejections
// (REJECTED_NEVER_FITS, REJECTED_DEADLINE), a concurrent pipelined burst,
// and a remote capacity snapshot, all end to end through TCP frames.
//
// Run with: go run ./examples/wire [-pipeline=false]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
)

func main() {
	pipeline := flag.Bool("pipeline", true, "pipeline requests over the client connections")
	flag.Parse()

	// The server side: a 4×32-processor cluster under the paper's α=1/2
	// rule, fronted by a reswire TCP server on an ephemeral loopback port.
	// cmd/resdsrv is this same wiring as a standalone binary.
	svc, err := resd.New(resd.Config{Shards: 4, M: 32, Alpha: 0.5, Placement: "least-loaded"})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := reswire.NewServer(svc)
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("server: %d shards × m=%d (α-floor %d) on %s\n\n", svc.Shards(), svc.M(), svc.Floor(), ln.Addr())

	// The client side: two connections, shared by every caller below.
	client, err := reswire.Dial(ln.Addr().String(), reswire.Options{Conns: 2, Pipeline: *pipeline})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// One admission, spelled out. The wire adds a frame each way but the
	// semantics are identical to calling the service in process.
	resv, err := client.Admit(resd.Request{Q: 8, Dur: 50, Deadline: resd.NoDeadline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Admit(ready=0, q=8, dur=50)   → shard %d, start %v\n", resv.Shard, resv.Start)

	// Typed rejections survive the wire: a request wider than the α rule
	// allows comes back as REJECTED_NEVER_FITS / resd.ErrNeverFits...
	if _, err := client.Admit(resd.Request{Q: 20, Dur: 10, Deadline: resd.NoDeadline}); errors.Is(err, resd.ErrNeverFits) {
		fmt.Printf("Admit(ready=0, q=20, dur=10)  → %v\n", err)
	}
	// ...and a deadline the cluster cannot meet as REJECTED_DEADLINE /
	// resd.ErrDeadline. Fill every shard on [0,100), then ask for a start
	// by t=60: the earliest feasible start is 100, so the service says no
	// instead of silently starting the reservation late.
	var fill []resd.Reservation
	for i := 0; i < 4; i++ {
		r, err := client.Admit(resd.Request{Q: 16, Dur: 100, Deadline: resd.NoDeadline})
		if err != nil {
			log.Fatal(err)
		}
		fill = append(fill, r)
	}
	if _, err := client.Admit(resd.Request{Q: 16, Dur: 10, Deadline: 60}); errors.Is(err, resd.ErrDeadline) {
		fmt.Printf("Admit(deadline=60)            → %v\n", err)
	}
	if r, err := client.Admit(resd.Request{Q: 16, Dur: 10, Deadline: 100}); err == nil {
		fmt.Printf("Admit(deadline=100)           → shard %d, start %v (met exactly)\n\n", r.Shard, r.Start)
	}
	for _, r := range fill {
		if err := client.Cancel(r.ID); err != nil {
			log.Fatal(err)
		}
	}

	// A concurrent burst: 8 callers × 50 admissions with per-request
	// deadlines. With pipelining on, their frames share flushes on both
	// sides of the connection; with -pipeline=false every request pays its
	// own round trip (compare the wall time).
	start := time.Now()
	var wg sync.WaitGroup
	var admitted, rejected sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.NewStream(7, uint64(g))
			var ok, late int
			for i := 0; i < 50; i++ {
				ready := core.Time(r.Int63n(5000))
				_, err := client.Admit(resd.Request{Ready: ready, Q: r.IntRange(1, 16), Dur: core.Time(r.Int63Range(5, 60)), Deadline: ready + 400})
				switch {
				case err == nil:
					ok++
				case errors.Is(err, resd.ErrDeadline):
					late++
				default:
					log.Fatal(err)
				}
			}
			admitted.Store(g, ok)
			rejected.Store(g, late)
		}(g)
	}
	wg.Wait()
	var totalOK, totalLate int
	for g := 0; g < 8; g++ {
		ok, _ := admitted.Load(g)
		late, _ := rejected.Load(g)
		totalOK += ok.(int)
		totalLate += late.(int)
	}
	mode := "pipelined"
	if !*pipeline {
		mode = "unpipelined"
	}
	fmt.Printf("burst: 400 requests (%s) → %d admitted, %d deadline-rejected in %v\n\n",
		mode, totalOK, totalLate, time.Since(start).Round(time.Microsecond))

	// Remote observability: per-shard stats and a full capacity snapshot,
	// rebuilt client-side as a queryable index.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for i, st := range stats {
		fmt.Printf("shard %d: %d active, %d admitted, %d deadline-rejected, %.1f ops/batch\n",
			i, st.Active, st.Admitted, st.RejectedDeadline, float64(st.Ops)/float64(st.Batches))
	}
	snap, err := client.Snapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot of shard 0: %d segments; free at t=0: %d/%d\n",
		snap.NumSegments(), snap.AvailableAt(0), snap.M())
	if slot, ok := snap.FindSlot(0, 16, 25); ok {
		fmt.Printf("what-if on the snapshot (no round trip): earliest 16-wide 25-tick slot at t=%v\n", slot)
	}
}
