// Portfolio and exact solving: on small instances the repository can
// compute true optima, so this example races the scheduling portfolio
// (every LSRC priority rule plus ordered conservative back-filling)
// against the exact branch-and-bound — sequential and parallel — and
// reports who closed the gap.
//
// Run with: go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	r := rng.New(17)
	table := stats.NewTable("instance", "portfolio", "exact C*", "gap", "seq nodes", "par nodes", "par time")
	for trial := 0; trial < 6; trial++ {
		inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
			M: 6, N: 9, MinRun: 1, MaxRun: 12,
		})
		if err != nil {
			log.Fatal(err)
		}
		inst.Res = workload.ReservationStream(r.Split(), 6, 0.5, 2, 40)

		best, err := sched.DefaultPortfolio().Schedule(inst)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := exact.Solve(inst)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		par, err := (&exact.ParallelSolver{}).Solve(inst)
		if err != nil {
			log.Fatal(err)
		}
		parTime := time.Since(t0)
		if par.Cmax != seq.Cmax {
			log.Fatalf("solvers disagree: %v vs %v", par.Cmax, seq.Cmax)
		}
		gap := float64(best.Makespan()) / float64(seq.Cmax)
		table.AddRow(fmt.Sprintf("#%d (n=%d)", trial+1, len(inst.Jobs)),
			int64(best.Makespan()), int64(seq.Cmax),
			fmt.Sprintf("%.3f", gap),
			seq.Nodes, par.Nodes, parTime.Round(time.Microsecond).String())
	}
	fmt.Println("portfolio (all LSRC priorities + ordered conservative BF) vs exact optimum:")
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println()
	fmt.Println("gap = portfolio makespan / optimum. The paper's guarantees bound this by")
	fmt.Println("2/α in the worst case; on typical instances the portfolio is near-optimal.")
}
