// Rebalancing walkthrough: pile a skewed reservation stream onto one
// shard with the deliberately naive first-fit placement, watch the
// imbalance score, drain the hot shard with a live rebalancing round
// (reservations migrate between shards with their IDs intact), and see
// quota-aware "pressure" placement avoid building the hot spot in the
// first place.
//
// Run with: go run ./examples/rebal
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rebal"
	"repro/internal/resd"
)

func shardAreas(svc *resd.Service) []int64 {
	st := svc.Stats()
	out := make([]int64, len(st))
	for i := range st {
		out[i] = st[i].CommittedArea
	}
	return out
}

func main() {
	// Four 32-processor partitions, first-fit placement: every request
	// lands on the lowest-index shard that can take it, which for
	// earliest-fit admission is always shard 0 — the skew generator.
	svc, err := resd.New(resd.Config{
		Shards: 4, M: 32, Placement: "first-fit",
		RebalanceThreshold: 0.1, RebalanceFreeze: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	var held []resd.Reservation
	for i := 0; i < 16; i++ {
		r, err := svc.Admit(resd.Request{Ready: core.Time(100 + 10*i), Q: 8, Dur: 40, Deadline: resd.NoDeadline})
		if err != nil {
			log.Fatal(err)
		}
		held = append(held, r)
	}
	fmt.Println("after 16 first-fit admissions:")
	areas := shardAreas(svc)
	fmt.Printf("  per-shard committed area: %v\n", areas)
	fmt.Printf("  imbalance score:          %.2f (1 = one shard holds everything)\n\n", rebal.Imbalance(areas))

	// One full rebalancing round at logical time 0. Reservations starting
	// inside [0, 50) — the frozen window — stay put; the rest migrate,
	// two-phase, until the spread falls to half the threshold.
	rep, err := svc.RebalanceAll(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalance: %d planned, %d applied, %d aborted, %d skipped; score %.2f → %.2f\n",
		rep.Planned, rep.Applied, rep.Aborted, rep.Skipped, rep.Before, rep.After)
	fmt.Printf("  per-shard committed area: %v\n", shardAreas(svc))
	for i, st := range svc.Stats() {
		if st.MigratedIn > 0 || st.MigratedOut > 0 {
			fmt.Printf("  shard %d: migrated in %d, out %d\n", i, st.MigratedIn, st.MigratedOut)
		}
	}

	// The original handles survive migration: Cancel follows the move.
	for _, r := range held {
		if err := svc.Cancel(r.ID); err != nil {
			log.Fatalf("cancel %#x after migration: %v", uint64(r.ID), err)
		}
	}
	fmt.Println("  all 16 original handles cancelled cleanly after migration")

	// Pressure placement: the same skewed tenant mix never builds the hot
	// spot, because each tenant is routed by its own per-shard footprint.
	psvc, err := resd.New(resd.Config{Shards: 4, M: 32, Placement: "pressure"})
	if err != nil {
		log.Fatal(err)
	}
	defer psvc.Close()
	perShard := make([]int, 4)
	for i := 0; i < 12; i++ { // one zipf-heavy tenant dominating the stream
		r, err := psvc.Admit(resd.Request{Tenant: "heavy", Ready: core.Time(100 + 10*i), Q: 8, Dur: 40, Deadline: resd.NoDeadline})
		if err != nil {
			log.Fatal(err)
		}
		perShard[r.Shard]++
	}
	small, err := psvc.Admit(resd.Request{Tenant: "small", Ready: 100, Q: 8, Dur: 40, Deadline: resd.NoDeadline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npressure placement: heavy tenant spread %v across shards; small tenant routed to shard %d\n",
		perShard, small.Shard)
	ts, err := psvc.TenantStats(small.Shard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  p99 start-time slack on that shard: heavy=%v small=%v ticks\n",
		ts["heavy"].SlackP99, ts["small"].SlackP99)
}
