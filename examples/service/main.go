// Service walkthrough: run the sharded reservation-admission service
// (internal/resd) in-process, admit a burst of concurrent reservation
// requests under the paper's α rule, watch the placement policy spread
// them across cluster partitions, and read back consistent snapshots.
//
// Run with: go run ./examples/service [-shards 4] [-placement p2c] [-backend tree]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
)

func main() {
	shards := flag.Int("shards", 4, "cluster partitions")
	placement := flag.String("placement", "p2c", "routing policy (first-fit, least-loaded, p2c)")
	backend := flag.String("backend", "array", "capacity index backend (array or tree)")
	flag.Parse()

	// A cluster of four 32-processor partitions. α = 1/2 is the paper's
	// §4.2 restriction: every partition keeps ⌊α·m⌋ = 16 processors free
	// of reservations at all times, so the schedulers retain their
	// 2/α-competitive guarantee for the job stream.
	svc, err := resd.New(resd.Config{
		Shards:    *shards,
		M:         32,
		Alpha:     0.5,
		Backend:   *backend,
		Placement: *placement,
		// One pre-existing maintenance window per partition, exempt from
		// the α rule (it models capacity already promised elsewhere).
		Pre: []core.Reservation{{ID: 0, Name: "maint", Procs: 8, Start: 100, Len: 50}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("service: %d shards × m=%d, α-floor %d, placement %s, backend %s\n\n",
		svc.Shards(), svc.M(), svc.Floor(), svc.Placement(), *backend)

	// One admission, spelled out. The request asks for 12 processors for
	// 40 ticks at or after t=90; the window [90,130) collides with the
	// maintenance hold (only 32-8=24 free, and 12+16 > 24), so the
	// earliest admissible start is 150, when the hold releases.
	first, err := svc.Admit(resd.Request{Ready: 90, Q: 12, Dur: 40, Deadline: resd.NoDeadline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Admit(ready=90, q=12, dur=40)   → shard %d, start %v (pushed past the maintenance window)\n\n",
		first.Shard, first.Start)

	// Now a concurrent burst: 8 clients × 25 requests. Every admission is
	// group-committed by the owning shard's event loop; the placement
	// policy routes on the atomically published load summaries.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitted []resd.Reservation
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.NewStream(7, uint64(c))
			for i := 0; i < 25; i++ {
				ready := core.Time(r.Int63n(2000))
				q := r.IntRange(1, 16) // ≤ m - floor, always admissible
				dur := core.Time(r.Int63Range(5, 60))
				resv, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				admitted = append(admitted, resv)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	fmt.Println("per-shard load after the burst:")
	for i, st := range svc.Stats() {
		fmt.Printf("  shard %d: %3d active, committed area %6d, %d batches for %d ops\n",
			i, st.Active, st.CommittedArea, st.Batches, st.Ops)
	}

	// Snapshots are taken inside the event loop between batches and come
	// back wrapped in profile.Synchronized, safe to share across
	// goroutines. The α floor is visible in the data: available capacity
	// never drops below 16 anywhere (Pre is exempt, so probe past it).
	snap, err := svc.Snapshot(0)
	if err != nil {
		log.Fatal(err)
	}
	minAvail := svc.M()
	for t := core.Time(200); t < 2100; t += 25 {
		if a := snap.AvailableAt(t); a < minAvail {
			minAvail = a
		}
	}
	fmt.Printf("\nshard 0 snapshot: %d segments; min capacity sampled on [200,2100) = %d (α-floor %d)\n",
		snap.NumSegments(), minAvail, svc.Floor())

	// Cancelling returns capacity; drain half the burst and compare.
	before := svc.Stats()
	for i, resv := range admitted {
		if i%2 == 0 {
			if err := svc.Cancel(resv.ID); err != nil {
				log.Fatal(err)
			}
		}
	}
	after := svc.Stats()
	var bArea, aArea int64
	for i := range before {
		bArea += before[i].CommittedArea
		aArea += after[i].CommittedArea
	}
	fmt.Printf("\ncancelled %d of %d: committed area %d → %d\n",
		(len(admitted)+1)/2, len(admitted), bArea, aArea)

	free, err := svc.Query(2500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity at t=2500 per shard: %v\n", free)
}
