// Quickstart: build a small cluster instance with an advance reservation,
// schedule it with list scheduling (LSRC), verify feasibility, and print an
// ASCII Gantt chart plus the relevant performance guarantee.
//
// Run with: go run ./examples/quickstart [-backend tree]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/verify"
)

func main() {
	backend := flag.String("backend", profile.DefaultBackend,
		"capacity index backend (array or tree)")
	flag.Parse()
	// A 8-processor cluster. One afternoon reservation holds 3 processors
	// for a demo (the §1.2 motivation), and six jobs are queued.
	inst := &core.Instance{
		Name: "quickstart",
		M:    8,
		Jobs: []core.Job{
			{ID: 0, Name: "cfd", Procs: 4, Len: 20},
			{ID: 1, Name: "render", Procs: 2, Len: 35},
			{ID: 2, Name: "mcmc", Procs: 1, Len: 50},
			{ID: 3, Name: "fft", Procs: 5, Len: 8},
			{ID: 4, Name: "blast", Procs: 3, Len: 15},
			{ID: 5, Name: "tiny", Procs: 1, Len: 5},
		},
		Res: []core.Reservation{
			{ID: 0, Name: "demo", Procs: 3, Start: 30, Len: 20},
		},
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	// The α of this instance (availability never drops below α·m and no
	// job is wider than α·m) gives LSRC's provable guarantee.
	alpha, ok := inst.Alpha()
	fmt.Printf("instance α = %.3f (valid α-instance: %v)\n", alpha, ok)
	if ok {
		fmt.Printf("LSRC guarantee (Proposition 3): Cmax <= %.2f × C*max\n", bounds.AlphaUpper(alpha))
	}

	sc, err := sched.ByNameOn("lsrc-lpt", *backend)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sc.Schedule(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapacity backend: %s (of %v; both give identical schedules)\n",
		*backend, profile.Backends())

	lb := lower.Best(inst)
	fmt.Printf("\nalgorithm: %s\nmakespan:  %v\nC*max lower bound: %v  (ratio <= %.3f)\n\n",
		s.Algorithm, s.Makespan(), lb, lower.Ratio(s.Makespan(), lb))

	chart, err := gantt.ASCII(s, 80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
}
