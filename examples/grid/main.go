// Grid co-allocation: the paper's §1.2 motivates reservations with grid
// computing — an application spanning two remote clusters must start at the
// same instant on both, so each site books an advance reservation. This
// example plans such a co-allocation: it finds the earliest common slot
// across two clusters (each already loaded with local work), books the
// paired reservations, and shows local scheduling flowing around them.
//
// Run with: go run ./examples/grid [-backend tree]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/workload"
)

// site is one cluster participating in the co-allocation.
type site struct {
	name string
	m    int
	inst *core.Instance // local jobs (reservation added after planning)
}

func main() {
	backend := flag.String("backend", profile.DefaultBackend,
		"capacity index backend (array or tree)")
	flag.Parse()
	r := rng.New(3)
	sites := []*site{
		{name: "cluster-A", m: 16},
		{name: "cluster-B", m: 24},
	}
	for _, s := range sites {
		inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
			M: s.m, N: 12, MinRun: 10, MaxRun: 120, MaxWidthFrac: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		inst.Name = s.name
		s.inst = inst
	}

	// The grid application needs 8 processors on each site for 60 ticks,
	// starting simultaneously. Find the earliest common start: each site
	// offers its earliest slot given EXISTING reservations only (local
	// batch jobs can be re-flowed around the booking, which is exactly
	// what advance reservation mechanisms assume); the common start is the
	// max over sites, re-validated on both.
	const needProcs, needLen = 8, core.Time(60)
	var start core.Time
	for _, s := range sites {
		tl, err := profile.IndexFromReservations(*backend, s.m, s.inst.Res)
		if err != nil {
			log.Fatal(err)
		}
		slot, ok := tl.FindSlot(0, needProcs, needLen)
		if !ok {
			log.Fatalf("%s can never host the co-allocation", s.name)
		}
		if slot > start {
			start = slot
		}
	}
	fmt.Printf("co-allocation: %d procs × %v ticks on both sites, start t=%v (backend %s)\n\n",
		needProcs, needLen, start, *backend)

	// Book the paired reservations and run each site's local scheduler.
	for _, s := range sites {
		s.inst.Res = append(s.inst.Res, core.Reservation{
			ID: len(s.inst.Res), Name: "grid-app", Procs: needProcs, Start: start, Len: needLen,
		})
		if err := s.inst.Validate(); err != nil {
			log.Fatal(err)
		}
		lsrc := &sched.LSRC{Order: sched.LPT, Backend: *backend}
		sc, err := lsrc.Schedule(s.inst)
		if err != nil {
			log.Fatal(err)
		}
		if err := verify.Verify(sc); err != nil {
			log.Fatal(err)
		}
		alpha, ok := s.inst.Alpha()
		fmt.Printf("%s: m=%d, local makespan %v, α=%.2f (α-instance: %v)\n",
			s.name, s.m, sc.Makespan(), alpha, ok)
		chart, err := gantt.ASCII(sc, 76)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(chart)
	}
	fmt.Println("both sites hold 8 processors over the same window — the grid job can")
	fmt.Println("start simultaneously everywhere, which is the reservation feature's purpose.")
}
