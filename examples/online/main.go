// Online scheduling: jobs arrive over time. §2.1 of the paper notes any
// offline algorithm runs online by scheduling in batches, with a doubling
// factor on the makespan. This example runs the batch-doubling wrapper
// around offline LSRC on a Poisson stream, prints the batch structure, and
// compares against (a) the clairvoyant offline LSRC reference and (b) the
// immediate greedy dispatcher.
//
// Run with: go run ./examples/online
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		m    = 32
		n    = 40
		seed = 11
	)
	r := rng.New(seed)
	arrivals, err := workload.Synthetic(r.Split(), workload.SynthConfig{
		M: m, N: n, MinRun: 10, MaxRun: 300, MeanInterArrival: 25, MaxWidthFrac: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	reservations := workload.ReservationStream(r.Split(), m, 0.5, 4, 4000)

	batch, err := online.BatchSchedule(m, reservations, arrivals, sched.NewLSRC(sched.LPT))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch-doubling LSRC-LPT on %d jobs, m=%d, %d reservations\n\n",
		n, m, len(reservations))
	for i, b := range batch.Batches {
		fmt.Printf("  batch %2d: released t=%-7v completed t=%-7v jobs=%d\n",
			i+1, b.ReleasedAt, b.CompletedAt, len(b.JobIdxs))
	}

	offline, err := online.OfflineReference(m, reservations, arrivals, sched.NewLSRC(sched.LPT))
	if err != nil {
		log.Fatal(err)
	}
	imm, err := sim.Run(m, reservations, arrivals, sim.GreedyPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	var lastArr core.Time
	for _, a := range arrivals {
		if a.At > lastArr {
			lastArr = a.At
		}
	}
	fmt.Printf("\nmakespans:\n")
	fmt.Printf("  batch-doubling online:    %v\n", batch.Makespan)
	fmt.Printf("  immediate greedy online:  %v\n", imm.Metrics.Makespan)
	fmt.Printf("  clairvoyant offline ref:  %v\n", offline)
	fmt.Printf("\ndoubling bound: makespan <= lastArrival + 2×offline = %v + 2×%v = %v  (holds: %v)\n",
		lastArr, offline, lastArr+2*offline, batch.Makespan <= lastArr+2*offline)
}
