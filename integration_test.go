package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gantt"
	"repro/internal/lower"
	"repro/internal/online"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/verify"
	"repro/internal/workload"
)

// TestEndToEndPipeline exercises the whole stack the way a downstream user
// would: synthesise a workload, serialise it as SWF, read it back, schedule
// the offline instance with every registered algorithm, verify and render
// each schedule, round-trip one through JSON, and simulate the online
// policies over the same arrivals.
func TestEndToEndPipeline(t *testing.T) {
	const m = 48
	r := rng.New(112233)
	arrivals, err := workload.Synthetic(r.Split(), workload.SynthConfig{
		M: m, N: 80, MinRun: 5, MaxRun: 400, MaxWidthFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reservations := workload.ReservationStream(r.Split(), m, 0.5, 5, 4000)

	// SWF round trip.
	tr := &workload.Trace{MaxProcs: m}
	for i, a := range arrivals {
		tr.Jobs = append(tr.Jobs, workload.SWFJob{
			ID: i + 1, Submit: int64(a.At), Wait: -1, Run: int64(a.Job.Len),
			Procs: a.Job.Procs, ReqProcs: a.Job.Procs, ReqTime: int64(a.Job.Len), Status: 1,
		})
	}
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	parsed, err := workload.ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := parsed.Instance(0)
	if err != nil {
		t.Fatal(err)
	}
	inst.Res = reservations
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.Jobs) != len(arrivals) {
		t.Fatalf("SWF round trip lost jobs: %d vs %d", len(inst.Jobs), len(arrivals))
	}

	// Offline: every registered algorithm schedules, verifies, renders.
	lb := lower.Best(inst)
	for _, name := range sched.Names() {
		sc, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sc.Schedule(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.Verify(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Makespan() < lb {
			t.Fatalf("%s beat the lower bound: %v < %v", name, s.Makespan(), lb)
		}
		chart, err := gantt.ASCII(s, 60)
		if err != nil {
			t.Fatalf("%s: gantt: %v", name, err)
		}
		if !strings.Contains(chart, "Cmax") {
			t.Fatalf("%s: malformed chart", name)
		}
	}

	// JSON round trip of one schedule.
	s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := s.WriteJSON(&sbuf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadScheduleJSON(&sbuf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan() != s.Makespan() {
		t.Fatalf("schedule JSON round trip changed makespan: %v vs %v",
			back.Makespan(), s.Makespan())
	}

	// Online: simulate all policies over the same arrivals; batch-doubling
	// wrapper stays within its bound.
	for _, p := range []sim.Policy{sim.FCFSPolicy{}, sim.EASYPolicy{}, sim.GreedyPolicy{}} {
		res, err := sim.Run(m, reservations, arrivals, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := verify.Verify(res.AsSchedule()); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
	batch, err := online.BatchSchedule(m, reservations, arrivals, sched.NewLSRC(sched.LPT))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := online.OfflineReference(m, reservations, arrivals, sched.NewLSRC(sched.LPT))
	if err != nil {
		t.Fatal(err)
	}
	var lastArr core.Time
	for _, a := range arrivals {
		if a.At > lastArr {
			lastArr = a.At
		}
	}
	if batch.Makespan > lastArr+2*ref {
		t.Fatalf("doubling bound violated: %v > %v + 2*%v", batch.Makespan, lastArr, ref)
	}
}

// TestExactAgreesWithPortfolioOnSmallPipelines cross-checks the solvers on
// a derived small instance: the exact optimum never exceeds any heuristic
// and the parallel solver agrees with the sequential one.
func TestExactAgreesWithPortfolioOnSmallPipelines(t *testing.T) {
	r := rng.New(445566)
	for trial := 0; trial < 15; trial++ {
		inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
			M: 6, N: 7, MinRun: 1, MaxRun: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := exact.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		par, err := (&exact.ParallelSolver{}).Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Cmax != par.Cmax {
			t.Fatalf("trial %d: solvers disagree: %v vs %v", trial, seq.Cmax, par.Cmax)
		}
		best, err := sched.DefaultPortfolio().Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if best.Makespan() < seq.Cmax {
			t.Fatalf("trial %d: portfolio %v beat the exact optimum %v",
				trial, best.Makespan(), seq.Cmax)
		}
	}
}
