// Package repro is a production-quality Go reproduction of
//
//	Lionel Eyraud-Dubois, Grégory Mounié, Denis Trystram,
//	"Analysis of Scheduling Algorithms with Reservations", IPDPS 2007.
//
// The repository implements the paper's model (rigid parallel jobs on m
// identical processors around advance reservations), the algorithm family
// it analyses (LSRC list scheduling, FCFS, conservative and EASY
// back-filling, shelf packing), exact solvers and lower bounds used as
// ratio references, every adversarial construction from the proofs, a
// workload substrate (SWF + synthetic), a discrete-event simulator, and an
// experiment harness that regenerates all four figures and every claim.
//
// All placement machinery runs against the profile.CapacityIndex seam,
// with two interchangeable backends: the flat sorted-array Timeline
// (internal/profile, the default) and a balanced augmented interval tree
// (internal/restree) whose subtree min-capacity aggregates give O(log n)
// admission and aggregate-pruned earliest-fit queries. Every scheduler,
// the simulator and the CLIs accept -backend={array,tree}; the backends
// are proven equivalent by a differential fuzz harness and compared by
// the root-level BenchmarkCapacityIndex (results in BENCH_restree.json —
// the tree is ~46× faster at 10^5 reservations).
//
// On top of that seam sits internal/resd, the concurrent
// reservation-admission service: S shards, each one cluster partition
// owning its own CapacityIndex behind a single-writer event loop
// (shard-local admission takes no locks), requests group-committed in
// batches per loop turn, and Reserve traffic routed across shards by
// pluggable placement policies (first-fit, least-loaded,
// power-of-two-choices on free area) with the paper's α-admission rule
// enforced per shard. profile.Synchronized wraps an index for safe
// cross-goroutine reads (service snapshots), cmd/resload replays
// synthetic or SWF-derived request streams at a target rate and reports
// throughput and latency percentiles, and BenchmarkResdThroughput
// records the shard-scaling curve in BENCH_resd.json (≥3.5× admission
// throughput at 8 shards vs 1 on the tree backend, single-core). See
// examples/service for a walkthrough and the internal/resd package
// comment for the shard and placement model.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks (bench_test.go) regenerate one figure each:
//
//	go test -bench=. -benchmem
package repro
