// Package repro is a production-quality Go reproduction of
//
//	Lionel Eyraud-Dubois, Grégory Mounié, Denis Trystram,
//	"Analysis of Scheduling Algorithms with Reservations", IPDPS 2007.
//
// The repository implements the paper's model (rigid parallel jobs on m
// identical processors around advance reservations), the algorithm family
// it analyses (LSRC list scheduling, FCFS, conservative and EASY
// back-filling, shelf packing), exact solvers and lower bounds used as
// ratio references, every adversarial construction from the proofs, a
// workload substrate (SWF + synthetic), a discrete-event simulator, and an
// experiment harness that regenerates all four figures and every claim.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks (bench_test.go) regenerate one figure each:
//
//	go test -bench=. -benchmem
package repro
