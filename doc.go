// Package repro is a production-quality Go reproduction of
//
//	Lionel Eyraud-Dubois, Grégory Mounié, Denis Trystram,
//	"Analysis of Scheduling Algorithms with Reservations", IPDPS 2007.
//
// The repository implements the paper's model (rigid parallel jobs on m
// identical processors around advance reservations), the algorithm family
// it analyses (LSRC list scheduling, FCFS, conservative and EASY
// back-filling, shelf packing), exact solvers and lower bounds used as
// ratio references, every adversarial construction from the proofs, a
// workload substrate (SWF + synthetic), a discrete-event simulator, and an
// experiment harness that regenerates all four figures and every claim.
//
// All placement machinery runs against the profile.CapacityIndex seam,
// with two interchangeable backends: the flat sorted-array Timeline
// (internal/profile, the default) and a balanced augmented interval tree
// (internal/restree) whose subtree min-capacity aggregates give O(log n)
// admission and aggregate-pruned earliest-fit queries. Every scheduler,
// the simulator and the CLIs accept -backend={array,tree}; the backends
// are proven equivalent by a differential fuzz harness and compared by
// the root-level BenchmarkCapacityIndex (results in BENCH_restree.json —
// the tree is ~46× faster at 10^5 reservations).
//
// On top of that seam sits internal/resd, the concurrent
// reservation-admission service: S shards, each one cluster partition
// owning its own CapacityIndex behind a single-writer event loop
// (shard-local admission takes no locks), requests group-committed in
// batches per loop turn, and Reserve traffic routed across shards by
// pluggable placement policies (first-fit, least-loaded,
// power-of-two-choices on free area) with the paper's α-admission rule
// enforced per shard. Admission is deadline-aware: ReserveBy rejects with
// ErrDeadline when the earliest feasible start on the α-prefix exceeds
// the caller's deadline, instead of pushing the reservation back.
// profile.Synchronized wraps an index for safe cross-goroutine reads
// (service snapshots), and BenchmarkResdThroughput records the
// shard-scaling curve in BENCH_resd.json (≥3.5× admission throughput at
// 8 shards vs 1 on the tree backend, single-core). See examples/service
// for a walkthrough and the internal/resd package comment for the shard
// and placement model.
//
// The shards rebalance themselves: internal/rebal plans migrations of
// admitted future reservations off hot shards (a pure planner — the
// imbalance score is the committed-area spread, reservations starting
// inside a frozen window are pinned, candidate choice is weighted by
// per-tenant quota pressure) and resd executes each move as a two-phase
// commit through the shard event loops, conserving capacity at every
// instant and transferring — never double-counting — tenant quota;
// reservation handles survive migration via forwarded Cancel routing.
// The "pressure" placement policy closes the loop at admission time,
// routing each Reserve by the requesting tenant's own per-shard
// footprint, and every admission records its start-time slack, surfaced
// as p99 per shard and per tenant (the SLO face of the α rule).
// BenchmarkRebalance records skewed-stream throughput recovering toward
// the balanced curve in BENCH_rebal.json. See examples/rebal.
//
// Admission is multi-tenant: internal/tenant partitions the reservable
// α-prefix between tenants as hierarchical area budgets (tenant → group
// → global capacity) with lock-free accounting beside the shard load
// summaries. Hard mode rejects an over-budget admission with
// resd.ErrQuota; soft mode instead reorders each shard's group-commit
// batch by usage-to-budget ratio — DRF-style weighted fair share at the
// exact point where requests contend. Budgets compose with, never
// replace, the paper's α rule: quotas only decide which tenant spends
// the prefix the α rule left reservable. See internal/tenant and
// examples/tenant; BenchmarkTenantThroughput records in
// BENCH_tenant.json that the accounting stays flat in the tenant count.
//
// The outermost layer is the wire: internal/reswire serves resd over TCP
// with a versioned length-prefixed binary protocol (revision 2: tenant
// ids on Reserve frames, QuotaGet/QuotaSet ops; revision 3: migration
// counters and p99 slack in Stats entries; down-level frames still
// accepted and answered at their own revision, v1 landing on the default
// tenant). The request path is
//
//	client → reswire frames → server dispatch → resd shard event loops → CapacityIndex
//
// with typed error codes end to end (a REJECTED_DEADLINE frame surfaces
// as resd.ErrDeadline on the remote side, a REJECTED_QUOTA as
// tenant.ErrQuota) and write coalescing on both halves: the pipelining
// client multiplexes concurrent callers over a few connections and
// batches their frames into shared flushes, and the server batches
// responses the same way, so under load a syscall carries many messages
// and the shard loops see the same group-commit batches as in-process
// traffic. cmd/resdsrv is the server binary (-quotas loads a tenant
// budget spec); cmd/resload replays synthetic or SWF-derived request
// streams against either an in-process service or a live server (-addr),
// optionally as a zipf-skewed multi-tenant mix (-tenants/-skew),
// reporting wire-level latency percentiles per tenant with rejections
// split from hard errors; deterministic equivalence tests pin both
// modes to identical placements and an SWF trace replay to the serial
// admission baseline. FuzzWireCodec hardens the decoder against hostile
// bytes, and BenchmarkWireThroughput records the pipelining win in
// BENCH_reswire.json (≥2× the unpipelined configuration at 16 concurrent
// callers on one core). See examples/wire for the walkthrough.
//
// See README.md for a tour. The root-level benchmarks (bench_test.go)
// regenerate one figure each:
//
//	go test -bench=. -benchmem
package repro
