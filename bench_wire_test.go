package repro

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/reswire"
	"repro/internal/rng"
)

// --- reswire throughput over loopback (BENCH_reswire.json) ---
//
// The scenario is the wire tax: the same Reserve+Cancel admission round
// trip as BenchmarkResdThroughput, but through the reswire protocol over
// a loopback TCP connection. The axes are concurrent client goroutines
// (1/4/16, multiplexed over one shared connection) and pipelining on/off. With
// pipelining off every request pays a full write-flush-wait round trip —
// the classic RPC shape; with it on, concurrent callers' frames share
// flushes on both sides, so the syscall cost amortises across whatever
// is in flight. The recorded claim is that at 16 clients pipelining buys
// at least 2× the unpipelined throughput.

const (
	wireBenchM       = 256
	wireBenchShards  = 4
	wireBenchPreload = 4096
	wireBenchHorizon = 1 << 18
	wireBenchConns   = 1
)

var wireBenchClients = []int{1, 4, 16}

// wireBenchEndpoint memoizes one preloaded service + loopback server for
// the whole bench process (mirrors resdLoadedService): the measured loop
// is Reserve+Cancel pairs, which restore the preloaded state exactly.
var (
	wireBenchMu   sync.Mutex
	wireBenchAddr string
)

func wireBenchEndpoint(tb testing.TB) string {
	tb.Helper()
	wireBenchMu.Lock()
	defer wireBenchMu.Unlock()
	if wireBenchAddr != "" {
		return wireBenchAddr
	}
	svc, err := resd.New(resd.Config{
		Shards: wireBenchShards, M: wireBenchM, Backend: "tree",
		Placement: "least-loaded", Batch: 64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < wireBenchPreload; i++ {
		ready := core.Time(r.Int63n(wireBenchHorizon))
		q := r.Intn(wireBenchM/4) + 1
		if i%10 == 0 {
			q = wireBenchM - r.Intn(8) - 1 // near-full hold
		}
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go reswire.NewServer(svc).Serve(ln) // retained for the process lifetime, by design
	wireBenchAddr = ln.Addr().String()
	return wireBenchAddr
}

// wireBenchOp is one measured admission round trip: Reserve at a random
// ready time and Cancel straight after, both over the wire.
func wireBenchOp(c *reswire.Client, r *rng.PCG) error {
	ready := core.Time(r.Int63n(wireBenchHorizon))
	q := r.Intn(wireBenchM/4) + 1
	dur := core.Time(r.Intn(100) + 20)
	resv, err := c.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
	if err != nil {
		return err
	}
	return c.Cancel(resv.ID)
}

// runWireBench drives b.N admission round trips from the given number of
// client goroutines through one client (Conns fixed at wireBenchConns).
func runWireBench(b *testing.B, clients int, pipeline bool) {
	addr := wireBenchEndpoint(b)
	c, err := reswire.Dial(addr, reswire.Options{Conns: wireBenchConns, Pipeline: pipeline})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		n := b.N / clients
		if g < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			r := rng.NewStream(42, uint64(g+1))
			for i := 0; i < n; i++ {
				if err := wireBenchOp(c, r); err != nil {
					b.Error(err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
}

func onoff(pipeline bool) string {
	if pipeline {
		return "on"
	}
	return "off"
}

// BenchmarkWireThroughput measures wire-level admission throughput across
// the client-count and pipelining axes. The pipelined rows are recorded
// in BENCH_reswire.json and gated in CI by cmd/benchgate.
func BenchmarkWireThroughput(b *testing.B) {
	for _, clients := range wireBenchClients {
		for _, pipeline := range []bool{false, true} {
			b.Run(fmt.Sprintf("clients=%d/pipeline=%s", clients, onoff(pipeline)), func(b *testing.B) {
				runWireBench(b, clients, pipeline)
			})
		}
	}
}

// TestEmitWireBenchJSON records the wire-throughput matrix as
// BENCH_reswire.json at the repository root. Opt-in (REPRO_EMIT_BENCH=1).
// It also enforces the claim the client is built for: at 16 concurrent
// callers, pipelining must deliver at least 2× the unpipelined
// throughput.
func TestEmitWireBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the wire layer and write BENCH_reswire.json")
	}
	type row struct {
		Clients         int     `json:"clients"`
		Pipeline        string  `json:"pipeline"`
		NsPerOp         float64 `json:"ns_per_op"`
		AllocsPerOp     float64 `json:"allocs_per_op"`
		OpsPerSec       float64 `json:"ops_per_sec"`
		PipelineSpeedup float64 `json:"pipeline_speedup,omitempty"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		M         int    `json:"m"`
		Shards    int    `json:"shards"`
		Preload   int    `json:"preloaded_reservations"`
		Conns     int    `json:"client_connections"`
		Workload  string `json:"workload"`
		GoVersion string `json:"go_version"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{
		Benchmark: "reswire loopback admission throughput: Reserve+Cancel round trips vs client count × pipelining",
		M:         wireBenchM,
		Shards:    wireBenchShards,
		Preload:   wireBenchPreload,
		Conns:     wireBenchConns,
		Workload: "tree backend, least-loaded placement, moderate widths over a fixed horizon; " +
			"clients multiplexed over one TCP connection on loopback",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	measure := func(clients int, pipeline bool) (float64, float64) {
		res := testing.Benchmark(func(b *testing.B) {
			runWireBench(b, clients, pipeline)
		})
		return float64(res.NsPerOp()), float64(res.AllocsPerOp())
	}
	unpipelined := map[int]float64{}
	for _, clients := range wireBenchClients {
		for _, pipeline := range []bool{false, true} {
			ns, allocs := measure(clients, pipeline)
			r := row{
				Clients: clients, Pipeline: onoff(pipeline),
				NsPerOp: ns, AllocsPerOp: allocs, OpsPerSec: 1e9 / ns,
			}
			if pipeline {
				r.PipelineSpeedup = unpipelined[clients] / ns
			} else {
				unpipelined[clients] = ns
			}
			out.Rows = append(out.Rows, r)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_reswire.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Rows {
		t.Logf("clients=%d pipeline=%s: %.0f ns/op (%.0f ops/s, speedup %.2f×)",
			r.Clients, r.Pipeline, r.NsPerOp, r.OpsPerSec, r.PipelineSpeedup)
		if r.Clients == 16 && r.Pipeline == "on" && r.PipelineSpeedup < 2 {
			t.Errorf("pipelining at 16 clients is only %.2f× the unpipelined throughput, want >= 2×",
				r.PipelineSpeedup)
		}
	}
}
