package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
)

// --- resd admission-service throughput (BENCH_resd.json) ---
//
// The scenario is scale-out: a fixed reservation stream over a fixed time
// horizon is served by S cluster partitions, so each shard owns 1/S of
// the stream. Admission cost is dominated by the shard-local capacity
// index — segment lookups, mutations, and the blocking segments an
// earliest-fit query must skip — all of which shrink as the per-shard
// stream thins. On multi-core hardware the shards' event loops also run
// in parallel; the recorded curve on a single core isolates the index
// effect, which is the floor of the scaling, not its ceiling.

const (
	// resdBenchM is each partition's processor count.
	resdBenchM = 256
	// resdBenchTotalRes is the fixed total preloaded stream, split across
	// shards by least-loaded routing.
	resdBenchTotalRes = 32768
	// resdBenchHorizon is the fixed time horizon the stream covers.
	resdBenchHorizon = 1 << 20
)

// resdBenchShards is the shard-count axis of the benchmark.
var resdBenchShards = []int{1, 2, 4, 8}

// resdLoadedServices memoizes preloaded services per (backend, shards):
// preloading 2^15 reservations through a 1-shard array service costs
// seconds, and the measured loop (Reserve+Cancel pairs) restores the
// exact preloaded state, so calibration re-runs can reuse the service.
var (
	resdSvcMu    sync.Mutex
	resdServices = map[string]*resd.Service{}
)

// resdLoadedService returns the preloaded service for the configuration,
// building it on first use. The preload mirrors loadedIndex: moderate
// reservations with every tenth a near-full hold, so wide admissions see
// real blocking segments whose per-shard density falls as 1/S.
func resdLoadedService(tb testing.TB, backend string, shards int) *resd.Service {
	tb.Helper()
	key := fmt.Sprintf("%s/%d", backend, shards)
	resdSvcMu.Lock()
	defer resdSvcMu.Unlock()
	if svc, ok := resdServices[key]; ok {
		return svc
	}
	svc, err := resd.New(resd.Config{
		Shards: shards, M: resdBenchM, Backend: backend,
		Placement: "least-loaded", Batch: 64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < resdBenchTotalRes; i++ {
		ready := core.Time(r.Int63n(resdBenchHorizon))
		q := r.Intn(resdBenchM/4) + 1
		if i%10 == 0 {
			q = resdBenchM - r.Intn(8) - 1 // near-full hold
		}
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	resdServices[key] = svc // retained for the process lifetime, by design
	return svc
}

// resdBenchOp is one measured admission: Reserve at a random ready time
// and Cancel straight after, keeping the service at its preloaded steady
// state. 15% of the requests are near-machine-wide: those are the ops
// whose earliest-fit must skip blocking segments one by one, and the
// number of blockers between the ready time and the first adequate lull
// scales with the shard's stream density — the effect the shard axis is
// measuring.
func resdBenchOp(svc *resd.Service, r *rng.PCG) error {
	ready := core.Time(r.Int63n(resdBenchHorizon))
	q := r.Intn(resdBenchM/4) + 1
	if r.Bool(0.15) {
		q = resdBenchM - 16 + r.Intn(16)
	}
	dur := core.Time(r.Intn(100) + 20)
	resv, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
	if err != nil {
		return err
	}
	return svc.Cancel(resv.ID)
}

// BenchmarkResdThroughput measures admission throughput (Reserve+Cancel
// round trips through the shard event loops) across the shard axis on
// both capacity backends. 32 concurrent clients keep every shard's batch
// path busy. The tree backend's curve is the headline recorded in
// BENCH_resd.json: admission gets cheaper as the per-shard stream thins,
// on top of whatever parallelism the hardware adds.
func BenchmarkResdThroughput(b *testing.B) {
	for _, backend := range []string{"array", "tree"} {
		for _, shards := range resdBenchShards {
			b.Run(fmt.Sprintf("backend=%s/shards=%d", backend, shards), func(b *testing.B) {
				svc := resdLoadedService(b, backend, shards)
				var seq uint64
				b.SetParallelism(32)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					resdSvcMu.Lock()
					seq++
					r := rng.NewStream(42, seq)
					resdSvcMu.Unlock()
					for pb.Next() {
						if err := resdBenchOp(svc, r); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// TestEmitResdBenchJSON records the shard-scaling curve as BENCH_resd.json
// at the repository root. Opt-in (REPRO_EMIT_BENCH=1): it runs seconds of
// measured benchmarks. It also enforces the scaling claim the service is
// built for: ≥2.5× admission throughput at 8 shards vs 1 on the tree
// backend.
func TestEmitResdBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the service and write BENCH_resd.json")
	}
	type row struct {
		Backend     string  `json:"backend"`
		Shards      int     `json:"shards"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		SpeedupVs1  float64 `json:"speedup_vs_1_shard"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		M         int    `json:"m"`
		TotalRes  int    `json:"preloaded_reservations_total"`
		Horizon   int64  `json:"horizon_ticks"`
		Workload  string `json:"workload"`
		GoVersion string `json:"go_version"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{
		Benchmark: "resd sharded admission service: Reserve+Cancel throughput vs shard count",
		M:         resdBenchM,
		TotalRes:  resdBenchTotalRes,
		Horizon:   resdBenchHorizon,
		Workload: "fixed stream split across shards (least-loaded), 32 clients, " +
			"15% near-machine-wide requests; single-core numbers isolate the per-shard index cost",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	measure := func(backend string, shards int) (float64, float64) {
		svc := resdLoadedService(t, backend, shards)
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				resdSvcMu.Lock()
				seq++
				r := rng.NewStream(42, seq)
				resdSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp()), float64(res.AllocsPerOp())
	}
	base := map[string]float64{}
	for _, backend := range []string{"array", "tree"} {
		for _, shards := range resdBenchShards {
			ns, allocs := measure(backend, shards)
			if shards == 1 {
				base[backend] = ns
			}
			out.Rows = append(out.Rows, row{
				Backend: backend, Shards: shards, NsPerOp: ns,
				AllocsPerOp: allocs,
				OpsPerSec:   1e9 / ns,
				SpeedupVs1:  base[backend] / ns,
			})
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_resd.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Rows {
		t.Logf("%s shards=%d: %.0f ns/op (%.1f× vs 1 shard)", r.Backend, r.Shards, r.NsPerOp, r.SpeedupVs1)
		if r.Backend == "tree" && r.Shards == 8 && r.SpeedupVs1 < 2.5 {
			t.Errorf("tree backend at 8 shards is %.2f× the 1-shard throughput, want >= 2.5×", r.SpeedupVs1)
		}
	}
}
