package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
	"repro/internal/wal"
)

// --- WAL durability overhead (BENCH_wal.json) ---
//
// The WAL promises that durability rides the batch turn the shard loop
// already takes: records are appended to an in-memory buffer as decisions
// commit, and the whole batch is flushed (and, under SyncBatch, fsynced)
// once per drain — never one syscall per admission. BenchmarkWALOverhead
// prices that promise with the same preloaded Reserve+Cancel workload as
// BenchmarkResdThroughput, across three variants: no WAL, a buffered WAL
// (SyncNone: write() per batch, no fsync — the group-commit machinery
// alone), and a fully synced WAL (SyncBatch: one fsync per batch — the
// physical-disk floor, recorded but not ratio-gated because fsync latency
// is a property of the CI machine's storage, not of this code).

// walBenchSnapEvery keeps snapshot truncation in play without letting it
// dominate: one snapshot per shard every 64Ki records.
const walBenchSnapEvery = 1 << 16

// walServices memoizes the preloaded services per variant, exactly as
// obsServices does: preloading is seconds of work and the measured loop
// restores its own state. The WAL directories live in the OS temp dir and
// are retained for the process lifetime, by design — a benchmark-scoped
// TempDir would be removed between b.N calibration runs while the log is
// still appending.
var (
	walSvcMu    sync.Mutex
	walServices = map[string]*resd.Service{}
)

// walLoadedService returns the preloaded 4-shard tree service with the
// given durability variant: "off" (no WAL), "buffered" (SyncNone), or
// "fsync" (SyncBatch).
func walLoadedService(tb testing.TB, mode string) *resd.Service {
	tb.Helper()
	walSvcMu.Lock()
	defer walSvcMu.Unlock()
	if svc, ok := walServices[mode]; ok {
		return svc
	}
	cfg := resd.Config{
		Shards: 4, M: resdBenchM, Backend: "tree",
		Placement: "least-loaded", Batch: 64,
	}
	switch mode {
	case "buffered", "fsync":
		dir, err := os.MkdirTemp("", "resd-walbench-"+mode+"-*")
		if err != nil {
			tb.Fatal(err)
		}
		sync := wal.SyncNone
		if mode == "fsync" {
			sync = wal.SyncBatch
		}
		cfg.WAL = &wal.Options{Dir: dir, Sync: sync, SnapEvery: walBenchSnapEvery}
	}
	svc, err := resd.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < resdBenchTotalRes; i++ {
		ready := core.Time(r.Int63n(resdBenchHorizon))
		q := r.Intn(resdBenchM/4) + 1
		if i%10 == 0 {
			q = resdBenchM - r.Intn(8) - 1
		}
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	walServices[mode] = svc // retained for the process lifetime, by design
	return svc
}

// BenchmarkWALOverhead measures the admission path with durability off,
// buffered, and fully synced. The three sub-benchmarks run the identical
// workload; the buffered/off ratio is the whole cost of the group-commit
// machinery, and the fsync row is the end-to-end durable figure.
func BenchmarkWALOverhead(b *testing.B) {
	for _, mode := range []string{"off", "buffered", "fsync"} {
		b.Run("wal="+mode, func(b *testing.B) {
			svc := walLoadedService(b, mode)
			var seq uint64
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				walSvcMu.Lock()
				seq++
				r := rng.NewStream(43, seq)
				walSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestEmitWALBenchJSON records the off/buffered/fsync figures and the
// buffered/off ratio as BENCH_wal.json at the repository root. Opt-in
// (REPRO_EMIT_BENCH=1). It also enforces the design claim directly: the
// group-commit machinery (everything but the physical fsync) must cost
// less than 50% of admission throughput.
func TestEmitWALBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the WAL overhead and write BENCH_wal.json")
	}
	type row struct {
		WAL     string  `json:"wal"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	out := struct {
		Benchmark     string  `json:"benchmark"`
		M             int     `json:"m"`
		Shards        int     `json:"shards"`
		TotalRes      int     `json:"preloaded_reservations_total"`
		SnapEvery     int     `json:"snap_every"`
		Workload      string  `json:"workload"`
		GoVersion     string  `json:"go_version"`
		MaxProcs      int     `json:"gomaxprocs"`
		Rows          []row   `json:"rows"`
		Overhead      float64 `json:"overhead"`
		MaxOverhead   float64 `json:"max_overhead"`
		FsyncOverhead float64 `json:"fsync_overhead"`
	}{
		Benchmark: "WAL durability overhead: Reserve+Cancel with the shard write-ahead log off, buffered (SyncNone), and batch-fsynced (SyncBatch)",
		M:         resdBenchM,
		Shards:    4,
		TotalRes:  resdBenchTotalRes,
		SnapEvery: walBenchSnapEvery,
		Workload: "same preloaded stream and op mix as BenchmarkResdThroughput (32 clients, " +
			"15% near-machine-wide requests), tree backend",
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		MaxOverhead: 1.5,
	}
	measure := func(mode string) float64 {
		svc := walLoadedService(t, mode)
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				walSvcMu.Lock()
				seq++
				r := rng.NewStream(43, seq)
				walSvcMu.Unlock()
				for pb.Next() {
					if err := resdBenchOp(svc, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp())
	}
	figures := map[string]float64{}
	for _, mode := range []string{"off", "buffered", "fsync"} {
		ns := measure(mode)
		figures[mode] = ns
		out.Rows = append(out.Rows, row{WAL: mode, NsPerOp: ns})
	}
	out.Overhead = figures["buffered"] / figures["off"]
	out.FsyncOverhead = figures["fsync"] / figures["off"]
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wal.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wal off %.0f ns/op, buffered %.0f ns/op (%.3f×), fsync %.0f ns/op (%.3f×)",
		figures["off"], figures["buffered"], out.Overhead, figures["fsync"], out.FsyncOverhead)
	if out.Overhead > out.MaxOverhead {
		t.Errorf("buffered WAL overhead %.3f× exceeds the %.2f× budget", out.Overhead, out.MaxOverhead)
	}
}
