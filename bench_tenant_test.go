package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
	"repro/internal/tenant"
)

// --- multi-tenant quota throughput (BENCH_tenant.json) ---
//
// The scenario is the quota tax: the same Reserve+Cancel admission round
// trip as BenchmarkResdThroughput, but through a tenant registry, across
// two axes — how many tenants share the prefix (1/4/16, equal shares)
// and which enforcement mode gates them. The registry's accounting is a
// sync.Map read plus a handful of atomics per admission, so the recorded
// claim is that quotas cost only a modest constant over the quota-less
// service, flat in the tenant count; a regression here (a lock on the
// acquire path, a scan over tenants) shows up directly as ns/op growth.

const (
	tenantBenchM       = 256
	tenantBenchShards  = 4
	tenantBenchAlpha   = 0.25
	tenantBenchPreload = 8192
	tenantBenchHorizon = 1 << 18
)

var (
	tenantBenchTenants = []int{1, 4, 16}
	tenantBenchModes   = []string{"hard", "soft"}
)

// tenantBenchNames memoizes the tenant name tables.
func tenantBenchNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// tenantLoadedServices memoizes preloaded services per (tenants, mode),
// mirroring resdLoadedService: the measured loop is Reserve+Cancel pairs,
// which restore the preloaded steady state exactly.
var (
	tenantSvcMu    sync.Mutex
	tenantServices = map[string]*resd.Service{}
)

func tenantLoadedService(tb testing.TB, tenants int, mode string) *resd.Service {
	tb.Helper()
	key := fmt.Sprintf("%d/%s", tenants, mode)
	tenantSvcMu.Lock()
	defer tenantSvcMu.Unlock()
	if svc, ok := tenantServices[key]; ok {
		return svc
	}
	names := tenantBenchNames(tenants)
	spec := tenant.Spec{Mode: mode}
	for _, name := range names {
		spec.Tenants = append(spec.Tenants, tenant.TenantSpec{Name: name, Share: 1 / float64(tenants)})
	}
	floor := int(tenantBenchAlpha * tenantBenchM)
	reg, err := tenant.New(tenant.PrefixCapacity(tenantBenchShards, tenantBenchM, tenantBenchAlpha, tenantBenchHorizon), spec)
	if err != nil {
		tb.Fatal(err)
	}
	svc, err := resd.New(resd.Config{
		Shards: tenantBenchShards, M: tenantBenchM, Alpha: tenantBenchAlpha,
		Backend: "tree", Placement: "least-loaded", Batch: 64, Quotas: reg,
	})
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(0xD1CE)
	for i := 0; i < tenantBenchPreload; i++ {
		ready := core.Time(r.Int63n(tenantBenchHorizon))
		q := r.Intn((tenantBenchM-floor)/4) + 1
		dur := core.Time(r.Intn(80) + 20)
		if _, err := svc.Admit(resd.Request{Tenant: names[i%tenants], Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline}); err != nil {
			tb.Fatal(err)
		}
	}
	tenantServices[key] = svc // retained for the process lifetime, by design
	return svc
}

// tenantBenchOp is one measured admission: ReserveFor a tenant chosen by
// the caller's stream, Cancel straight after — one full quota
// acquire/admit/release cycle through the shard event loops.
func tenantBenchOp(svc *resd.Service, names []string, r *rng.PCG) error {
	floor := int(tenantBenchAlpha * tenantBenchM)
	ready := core.Time(r.Int63n(tenantBenchHorizon))
	q := r.Intn((tenantBenchM-floor)/4) + 1
	dur := core.Time(r.Intn(100) + 20)
	resv, err := svc.Admit(resd.Request{Tenant: names[r.Intn(len(names))], Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
	if err != nil {
		return err
	}
	return svc.Cancel(resv.ID)
}

// BenchmarkTenantThroughput measures admission throughput through the
// quota registry across the tenant-count and enforcement-mode axes. The
// rows are recorded in BENCH_tenant.json and gated in CI by
// cmd/benchgate -tenant.
func BenchmarkTenantThroughput(b *testing.B) {
	for _, tenants := range tenantBenchTenants {
		for _, mode := range tenantBenchModes {
			b.Run(fmt.Sprintf("tenants=%d/mode=%s", tenants, mode), func(b *testing.B) {
				svc := tenantLoadedService(b, tenants, mode)
				names := tenantBenchNames(tenants)
				var seq uint64
				b.SetParallelism(32)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					tenantSvcMu.Lock()
					seq++
					r := rng.NewStream(42, seq)
					tenantSvcMu.Unlock()
					for pb.Next() {
						if err := tenantBenchOp(svc, names, r); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// TestEmitTenantBenchJSON records the quota-throughput matrix as
// BENCH_tenant.json at the repository root. Opt-in (REPRO_EMIT_BENCH=1).
// It also enforces the claim the registry is built for: accounting is
// flat in the tenant count — 16 tenants may cost at most 1.8× the
// 1-tenant figure in either mode.
func TestEmitTenantBenchJSON(t *testing.T) {
	if os.Getenv("REPRO_EMIT_BENCH") == "" {
		t.Skip("set REPRO_EMIT_BENCH=1 to measure the quota layer and write BENCH_tenant.json")
	}
	type row struct {
		Tenants   int     `json:"tenants"`
		Mode      string  `json:"mode"`
		NsPerOp   float64 `json:"ns_per_op"`
		OpsPerSec float64 `json:"ops_per_sec"`
	}
	out := struct {
		Benchmark string  `json:"benchmark"`
		M         int     `json:"m"`
		Shards    int     `json:"shards"`
		Alpha     float64 `json:"alpha"`
		Preload   int     `json:"preloaded_reservations"`
		Horizon   int64   `json:"accounting_horizon_ticks"`
		Workload  string  `json:"workload"`
		GoVersion string  `json:"go_version"`
		MaxProcs  int     `json:"gomaxprocs"`
		Rows      []row   `json:"rows"`
	}{
		Benchmark: "multi-tenant quota admission throughput: Reserve+Cancel vs tenant count × enforcement mode",
		M:         tenantBenchM,
		Shards:    tenantBenchShards,
		Alpha:     tenantBenchAlpha,
		Preload:   tenantBenchPreload,
		Horizon:   tenantBenchHorizon,
		Workload: "tree backend, least-loaded placement, equal shares, 32 clients round-robining " +
			"tenants; hard mode pays the CAS acquire, soft mode the ratio-ordered batches",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	measure := func(tenants int, mode string) float64 {
		svc := tenantLoadedService(t, tenants, mode)
		names := tenantBenchNames(tenants)
		var seq uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				tenantSvcMu.Lock()
				seq++
				r := rng.NewStream(42, seq)
				tenantSvcMu.Unlock()
				for pb.Next() {
					if err := tenantBenchOp(svc, names, r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		return float64(res.NsPerOp())
	}
	single := map[string]float64{}
	for _, tenants := range tenantBenchTenants {
		for _, mode := range tenantBenchModes {
			ns := measure(tenants, mode)
			if tenants == 1 {
				single[mode] = ns
			}
			out.Rows = append(out.Rows, row{Tenants: tenants, Mode: mode, NsPerOp: ns, OpsPerSec: 1e9 / ns})
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_tenant.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Rows {
		t.Logf("tenants=%d mode=%s: %.0f ns/op (%.0f ops/s, %.2f× vs 1 tenant)",
			r.Tenants, r.Mode, r.NsPerOp, r.OpsPerSec, r.NsPerOp/single[r.Mode])
		if r.Tenants == 16 && r.NsPerOp > single[r.Mode]*1.8 {
			t.Errorf("%s mode at 16 tenants is %.2f× the 1-tenant cost, want <= 1.8× (accounting must stay flat)",
				r.Mode, r.NsPerOp/single[r.Mode])
		}
	}
}
